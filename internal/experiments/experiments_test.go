package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// tiny keeps CI runtimes low; individual experiments get deeper checks
// in their own tests below.
var tiny = Budget{Requests: 800, KeysPerServer: 40000, Seed: 1}

func TestAllRegistryComplete(t *testing.T) {
	want := []string{"table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "table4", "prop1", "prop2",
		"ext-tails", "ext-arrivals", "ext-eq6", "ext-redundancy",
		"ext-integrated", "ext-elasticity", "ext-resilience", "crossplane",
		"hotkey", "noisy", "proxied", "tiered", "live", "drift"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("entry %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("entry %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig7")
	if err != nil || e.ID != "fig7" {
		t.Fatalf("ByID: %+v %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{
		ID: "x", Title: "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	out := r.Render()
	for _, want := range []string{"== x", "demo", "a note", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// parseUs reads a "123µs" cell back to seconds.
func parseUs(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell, "µs")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v * 1e-6
}

func parseMs(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell, "ms")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v * 1e-3
}

// parseLat reads adaptive "12.3ns"/"45.6µs"/"7.89ms" cells to seconds.
func parseLat(t *testing.T, cell string) float64 {
	t.Helper()
	unit := 1.0
	s := cell
	switch {
	case strings.HasSuffix(cell, "ns"):
		unit, s = 1e-9, strings.TrimSuffix(cell, "ns")
	case strings.HasSuffix(cell, "µs"):
		unit, s = 1e-6, strings.TrimSuffix(cell, "µs")
	case strings.HasSuffix(cell, "ms"):
		unit, s = 1e-3, strings.TrimSuffix(cell, "ms")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v * unit
}

func TestTable3ReproducesPaper(t *testing.T) {
	r, err := Table3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// TD theory cell (row 2, col 1) must be ~836µs.
	td := parseUs(t, r.Rows[2][1])
	if td < 800e-6 || td > 880e-6 {
		t.Errorf("TD theory = %v", td)
	}
	// TS experiment within 15% of the 351-366µs band.
	ts := parseUs(t, r.Rows[1][2])
	if ts < 300e-6 || ts > 420e-6 {
		t.Errorf("TS experiment = %v", ts)
	}
}

func TestFig4BoundsHold(t *testing.T) {
	r, err := Fig4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row[4] != "yes" {
			t.Errorf("k=%s outside bounds: %v", row[0], row)
		}
	}
}

func TestFig5Monotone(t *testing.T) {
	r, err := Fig5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	prevTheory, prevExp := 0.0, 0.0
	for _, row := range r.Rows {
		theory, exp := parseUs(t, row[1]), parseUs(t, row[2])
		if theory <= prevTheory {
			t.Errorf("theory not increasing at q=%s", row[0])
		}
		if exp <= prevExp*0.9 { // simulation noise tolerance
			t.Errorf("experiment not increasing at q=%s", row[0])
		}
		// Experiment within 20% of theory.
		if exp < theory*0.8 || exp > theory*1.2 {
			t.Errorf("q=%s: exp %v vs theory %v", row[0], exp, theory)
		}
		prevTheory, prevExp = theory, exp
	}
}

func TestFig7CliffShape(t *testing.T) {
	r, err := Fig7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	first := parseUs(t, r.Rows[0][2])
	last := parseUs(t, r.Rows[len(r.Rows)-1][2])
	if last < first*5 {
		t.Errorf("no cliff: %v -> %v", first, last)
	}
}

func TestFig8Fig9TheoryOrdering(t *testing.T) {
	r8, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// At every λ, burstier traffic must be slower (when stable).
	for _, row := range r8.Rows {
		if row[1] == "unstable" || row[3] == "unstable" {
			continue
		}
		lo := parseUs(t, row[1])
		hi := parseUs(t, row[3])
		if hi <= lo {
			t.Errorf("λ=%s: ξ=0.8 (%v) not slower than ξ=0 (%v)", row[0], hi, lo)
		}
	}
	r9, err := Fig9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// At every µS where all curves are stable, same ordering.
	for _, row := range r9.Rows {
		if row[1] == "unstable" || row[3] == "unstable" {
			continue
		}
		if parseUs(t, row[3]) <= parseUs(t, row[1]) {
			t.Errorf("µS=%s: burst ordering violated", row[0])
		}
	}
}

func TestFig10ImbalanceCliff(t *testing.T) {
	r, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	first := parseUs(t, r.Rows[0][3])
	last := parseUs(t, r.Rows[len(r.Rows)-1][3])
	if last < first*3 {
		t.Errorf("imbalance cliff missing: %v -> %v", first, last)
	}
}

func TestFig11Regimes(t *testing.T) {
	r, err := Fig11(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// For N=1 (cols 1-2), theory at r=1e-2 (row 2) should be ~10x theory
	// at r=1e-3 (row 1) — Θ(r).
	lo := parseLat(t, r.Rows[1][1])
	hi := parseLat(t, r.Rows[2][1])
	if ratio := hi / lo; ratio < 8 || ratio > 12 {
		t.Errorf("small-N ratio = %v, want ~10", ratio)
	}
	// For N=10000 (last column pair), the same decade adds only
	// a log increment.
	nCols := len(r.Columns)
	lo = parseLat(t, r.Rows[1][nCols-2])
	hi = parseLat(t, r.Rows[2][nCols-2])
	if ratio := hi / lo; ratio > 2 {
		t.Errorf("large-N decade ratio = %v, want < 2 (Θ(log r))", ratio)
	}
}

func TestFig12Fig13LogGrowth(t *testing.T) {
	r12, err := Fig12(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Per-decade increments of theory should be roughly constant once N
	// is large (the 1→10 decade legitimately carries a smaller
	// ln(11)−ln(2) increment, so compare from the second decade on).
	var incs []float64
	for i := 1; i < len(r12.Rows); i++ {
		incs = append(incs, parseUs(t, r12.Rows[i][1])-parseUs(t, r12.Rows[i-1][1]))
	}
	for i := 2; i < len(incs); i++ {
		if incs[i] < incs[1]*0.9 || incs[i] > incs[1]*1.1 {
			t.Errorf("TS increments not log-like: %v", incs)
		}
	}
	r13, err := Fig13(tiny)
	if err != nil {
		t.Fatal(err)
	}
	lastTheory := parseLat(t, r13.Rows[len(r13.Rows)-1][1])
	lastExp := parseLat(t, r13.Rows[len(r13.Rows)-1][2])
	if lastTheory < 8e-3 || lastTheory > 11e-3 {
		t.Errorf("TD(10^6) theory = %v, paper shows ~9.2ms", lastTheory)
	}
	if lastExp < lastTheory*0.9 || lastExp > lastTheory*1.1 {
		t.Errorf("TD(10^6) exp %v vs theory %v", lastExp, lastTheory)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	r, err := Table4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 20 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The δ-threshold column should track the paper to within a few
	// points at low ξ.
	parsePct := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		return v / 100
	}
	for _, row := range r.Rows {
		xi, _ := strconv.ParseFloat(row[0], 64)
		got := parsePct(row[1])
		paper := paperTable4[xi]
		tol := 0.08
		if xi >= 0.5 {
			tol = 0.2 // heavy tails: detector definitions diverge more
		}
		if got < paper-tol || got > paper+tol {
			t.Errorf("ξ=%v: δ-threshold %v vs paper %v", xi, got, paper)
		}
	}
}

func TestProp1NoViolations(t *testing.T) {
	r, err := Prop1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row[3] != "true" {
			t.Errorf("Prop 1 violated: %v", row)
		}
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "VIOLATIONS") {
			t.Errorf("note: %s", n)
		}
	}
}

func TestProp2SmallErrors(t *testing.T) {
	r, err := Prop2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("cell %q: %v", cell, err)
			}
			if v > 1e-3 {
				t.Errorf("scale %s: error %v too large", row[0], v)
			}
		}
	}
}

func TestLiveStack(t *testing.T) {
	if testing.Short() {
		t.Skip("live stack run takes ~2s of wall time")
	}
	r, err := Live(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Mean live latency should be positive and within 10x of theory.
	var meanLive, meanTheory float64
	for _, row := range r.Rows {
		if row[0] == "mean latency" {
			meanLive = parseMs(t, row[1])
			cell := strings.TrimPrefix(row[2], "GI^X/M/1 mean sojourn ")
			meanTheory = parseMs(t, cell)
		}
	}
	if meanLive <= 0 || meanTheory <= 0 {
		t.Fatalf("missing means: live=%v theory=%v", meanLive, meanTheory)
	}
	if meanLive > meanTheory*10 || meanLive < meanTheory/10 {
		t.Errorf("live mean %v vs theory %v diverge beyond 10x", meanLive, meanTheory)
	}
}

func TestProxiedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("includes two live stack runs")
	}
	r, err := Proxied(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// 3 load points × 3 routing rows + 2 live rows.
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(r.Columns))
		}
		// Proxied rows carry a positive measured total and hop mean.
		if row[1] == "proxied" && (row[3] == "-" || row[4] == "-" || row[4] == "0µs") {
			t.Errorf("proxied row missing measurements: %v", row)
		}
	}
}

func TestNoisyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("includes a live stack run")
	}
	r, err := Noisy(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// 3 legs × (2 tenants + the "all" row).
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(r.Columns))
		}
		switch {
		case strings.HasPrefix(row[1], "victim"):
			// The victim never sheds: analytic 0% on the model row, a
			// measured shed count of 0 on the sim and live rows.
			if row[4] != "0%" && row[6] != "0" {
				t.Errorf("victim row shows sheds: %v", row)
			}
		case strings.HasPrefix(row[1], "aggressor"):
			if shed, err := strconv.Atoi(row[6]); row[6] != "-" && (err != nil || shed <= 0) {
				t.Errorf("aggressor row shed nothing: %v", row)
			}
			if row[4] == "0%" {
				t.Errorf("aggressor row shows 0%% shed: %v", row)
			}
		}
	}
}

func TestTieredExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("includes a live stack run")
	}
	r, err := Tiered(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// 5 sweep rows + 1 live row.
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(r.Columns))
		}
		switch {
		case i == 0:
			// The all-RAM split has no tier: no disk hits, no β.
			if row[6] != "0" || row[8] != "-" {
				t.Errorf("all-RAM row shows tier activity: %v", row)
			}
		default:
			// Every tiered row measured real disk hits at roughly the
			// MRC-predicted fraction.
			hits, err := strconv.Atoi(row[6])
			if err != nil || hits <= 0 {
				t.Errorf("row %d measured no disk hits: %v", i, row)
				continue
			}
			pred, err1 := strconv.ParseFloat(row[2], 64)
			meas, err2 := strconv.ParseFloat(row[8], 64)
			if err1 != nil || err2 != nil {
				t.Errorf("row %d has unparseable β cells: %v", i, row)
				continue
			}
			slack := 0.15
			if strings.HasPrefix(row[0], "live") {
				slack = pred / 2 // live gets the 1.5× band of the cross-plane test
			}
			if meas < pred-slack || meas > pred+slack {
				t.Errorf("row %d: measured β %.2f far from predicted %.2f: %v", i, meas, pred, row)
			}
		}
	}
}

func TestExtTails(t *testing.T) {
	r, err := ExtTails(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The simulated TS quantile should fall within (or near) the theory
	// band at p50/p90; deeper tails probe the per-key 0.9999+ quantile,
	// which a quick-budget finite sample truncates, so only a loose
	// lower-side check applies there (see the report note).
	prevSim := 0.0
	for i, row := range r.Rows {
		band := row[1]
		band = strings.TrimPrefix(band, "[")
		band = strings.TrimSuffix(band, "]")
		parts := strings.Split(band, ", ")
		if len(parts) != 2 {
			t.Fatalf("band cell %q", row[1])
		}
		lo := parseUs(t, parts[0])
		hi := parseUs(t, parts[1])
		got := parseUs(t, row[2])
		if got <= prevSim {
			t.Errorf("%s: sim TS %v not increasing", row[0], got)
		}
		prevSim = got
		if i < 2 { // p50, p90: strict band
			if got < lo*0.85 || got > hi*1.15 {
				t.Errorf("%s: sim TS %v outside band [%v, %v]", row[0], got, lo, hi)
			}
			continue
		}
		if got < lo*0.5 || got > hi*1.3 { // p99, p99.9: loose envelope
			t.Errorf("%s: sim TS %v far from band [%v, %v]", row[0], got, lo, hi)
		}
	}
	// TD sim must track the exact closed form within 10% at p99.
	tdTheory := parseLat(t, r.Rows[2][3])
	tdSim := parseLat(t, r.Rows[2][4])
	if tdTheory <= 0 || tdSim < tdTheory*0.85 || tdSim > tdTheory*1.15 {
		t.Errorf("p99 TD: sim %v vs theory %v", tdSim, tdTheory)
	}
}

func TestExtArrivalsOrdering(t *testing.T) {
	r, err := ExtArrivals(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Latency must rank by arrival variability: Erlang < Poisson <
	// GPareto < Hyperexp, in both theory and simulation.
	for col := 2; col <= 3; col++ {
		prev := 0.0
		for _, row := range r.Rows {
			v := parseUs(t, row[col])
			if v <= prev {
				t.Errorf("col %d: %s (%v) not above previous (%v)", col, row[0], v, prev)
			}
			prev = v
		}
	}
}

func TestExtEq6Ablation(t *testing.T) {
	r, err := ExtEq6Ablation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	table1 := parseUs(t, r.Rows[0][2])
	inline := parseUs(t, r.Rows[1][2])
	simMean := parseUs(t, r.Rows[2][2])
	// The Table 1 form must be the better match to the simulated queue.
	errT1 := math.Abs(table1 - simMean)
	errInline := math.Abs(inline - simMean)
	if errT1 >= errInline {
		t.Errorf("Table 1 form (%v) no better than inline (%v) vs sim %v",
			table1, inline, simMean)
	}
	if table1 < simMean*0.9 || table1 > simMean*1.1 {
		t.Errorf("Table 1 delta mean %v vs sim %v diverge > 10%%", table1, simMean)
	}
}

func TestExtRedundancy(t *testing.T) {
	r, err := ExtRedundancy(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At the lowest utilization the hedge must win in theory and sim.
	first := r.Rows[0]
	if parseUs(t, first[2]) >= parseUs(t, first[1]) {
		t.Errorf("low-rho theory hedge not winning: %v", first)
	}
	if parseUs(t, first[4]) >= parseUs(t, first[3])*1.05 {
		t.Errorf("low-rho sim hedge not winning: %v", first)
	}
	// At the highest utilization shown (0.45, doubled to 0.9) it must lose.
	last := r.Rows[len(r.Rows)-1]
	if last[5] != "hedge LOSES" {
		t.Errorf("high-rho verdict = %q", last[5])
	}
	// Sim tracks theory within 20%% on the hedged column everywhere.
	for _, row := range r.Rows {
		thr, sim := parseUs(t, row[2]), parseUs(t, row[4])
		if sim < thr*0.8 || sim > thr*1.2 {
			t.Errorf("rho=%s: hedged sim %v vs theory %v", row[0], sim, thr)
		}
	}
}

func TestExtIntegrated(t *testing.T) {
	r, err := ExtIntegrated(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The two simulators should agree within ~35% at every utilization
	// (the assumption is "acceptable", per the paper) and both should
	// increase with load.
	prevComp, prevInteg := 0.0, 0.0
	for _, row := range r.Rows {
		comp := parseUs(t, row[3])
		integ := parseUs(t, row[4])
		if comp <= prevComp || integ <= prevInteg {
			t.Errorf("rho=%s: means not increasing", row[0])
		}
		prevComp, prevInteg = comp, integ
		// The integrated system is slower (self-queueing of a request's
		// own keys), by a bounded factor.
		if integ < comp {
			t.Errorf("rho=%s: integrated %v below composition %v", row[0], integ, comp)
		}
		if integ > comp*2 {
			t.Errorf("rho=%s: simulators diverge beyond 2x (%v vs %v)", row[0], integ, comp)
		}
	}
}

func TestExtElasticity(t *testing.T) {
	r, err := ExtElasticity(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Ranked by |elasticity| at the high-load point.
	prev := math.Inf(1)
	for _, row := range r.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("cell %q: %v", row[3], err)
		}
		if math.Abs(v) > prev+1e-9 {
			t.Errorf("ranking violated at factor %s", row[1])
		}
		prev = math.Abs(v)
	}
}

func TestFaultExtResilience(t *testing.T) {
	r, err := ExtResilience(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	failed := func(row []string) int {
		n, err := strconv.Atoi(strings.Fields(row[3])[0])
		if err != nil {
			t.Fatalf("failed-keys cell %q: %v", row[3], err)
		}
		return n
	}
	none, retry := r.Rows[0], r.Rows[1]
	if none[0] != "none" || retry[0] != "retry" {
		t.Fatalf("unexpected policy order: %v / %v", none[0], retry[0])
	}
	if failed(none) == 0 {
		t.Fatal("no failures under the drop schedule without resilience")
	}
	if failed(retry) >= failed(none) {
		t.Errorf("retry policy did not reduce failed keys: %d vs %d",
			failed(retry), failed(none))
	}
}

func TestFaultCrossPlaneRows(t *testing.T) {
	r, err := CrossPlane(tiny)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"model", "sim", "sim-integrated", "sim-integrated faulted",
		"sim faulted", "sim faulted+resilient"}
	// 6 mean rows plus a predicted-vs-observed quantile block:
	// p50/p95/p99 for every run.
	if want := len(labels) * 4; len(r.Rows) != want {
		t.Fatalf("rows = %d, want %d (means + p50/p95/p99 blocks)", len(r.Rows), want)
	}
	for i, want := range labels {
		if r.Rows[i][0] != want {
			t.Errorf("row %d = %q, want %q", i, r.Rows[i][0], want)
		}
	}
	for qi, q := range []string{"p50", "p95", "p99"} {
		for li, label := range labels {
			row := r.Rows[len(labels)*(qi+1)+li]
			if want := label + " " + q; row[0] != want {
				t.Errorf("quantile row = %q, want %q", row[0], want)
			}
			if len(row) != len(r.Columns) {
				t.Errorf("quantile row %q has %d cells, want %d", row[0], len(row), len(r.Columns))
			}
		}
	}
	// The model's predicted service quantiles must be the exponential
	// shape: p99/p50 = ln(0.01)/ln(0.5) ≈ 6.64.
	svcCol := -1
	for i, c := range r.Columns {
		if c == "service" {
			svcCol = i
		}
	}
	if svcCol < 0 {
		t.Fatalf("no service column in %v", r.Columns)
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "µs"), 64)
		if err != nil {
			t.Fatalf("bad latency cell %q: %v", cell, err)
		}
		return v
	}
	p50 := parse(r.Rows[len(labels)][svcCol])
	p99 := parse(r.Rows[3*len(labels)][svcCol])
	// Exponential shape: p99/p50 = ln(0.01)/ln(0.5) ≈ 6.64 (loose bounds
	// absorb the µs rounding of the rendered cells).
	if ratio := p99 / p50; ratio < 5 || ratio > 9 {
		t.Errorf("model service p99/p50 = %.2f, want ~6.64 (exponential shape)", ratio)
	}
	// The stage columns must include the resilience stages.
	joined := strings.Join(r.Columns, " ")
	for _, col := range []string{"retry", "hedge_wait", "breaker_shed"} {
		if !strings.Contains(joined, col) {
			t.Errorf("columns missing %s: %v", col, r.Columns)
		}
	}
}

func TestDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("drift live leg takes ~6s of wall time")
	}
	r, err := Drift(tiny)
	if err != nil {
		// Drift enforces its own acceptance bounds (detection within 5
		// windows, miss_penalty attribution, sim determinism, quiet
		// ramp) and errors when any is violated.
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("drift rendered %d rows, want 6 (2 sim + live + 3 ramp)", len(r.Rows))
	}
	if r.Rows[0][2] != r.Rows[1][2] {
		t.Errorf("sim detection windows differ: %s vs %s", r.Rows[0][2], r.Rows[1][2])
	}
	for _, row := range r.Rows[3:] {
		if row[6] != "0/0" {
			t.Errorf("healthy ramp row %s fired alerts: %s", row[0], row[6])
		}
	}
}
