package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/fault"
	"memqlat/internal/plane"
)

// hotKeyModel is a miss-heavy cluster whose misses concentrate on a
// small Zipf keyspace: the thundering-herd regime where many in-flight
// requests chase the same uncached key.
func hotKeyModel() *core.Config {
	return &core.Config{
		N:              10,
		LoadRatios:     core.BalancedLoad(2),
		TotalKeyRate:   20000,
		Q:              0.1,
		Xi:             0.15,
		MuS:            80000,
		MissRatio:      0.3,
		MuD:            200,
		NetworkLatency: 20e-6,
	}
}

const (
	hotKeyKeys  = 50
	hotKeyZipfS = 1.2
	// hotKeyDBFault stalls every database lookup by 10ms — the
	// degraded-backend leg where coalescing bounds the blast radius to
	// one delayed fetch per key window instead of one per miss.
	hotKeyDBFault = "slow:srv=db,p=1,delay=10ms"
)

// hotKeyRow formats one leg: totals plus the miss-path accounting that
// is the experiment's point (how many misses actually reached the
// database).
func hotKeyRow(label string, res *plane.Result) []string {
	p99 := "-"
	if res.Sample != nil && res.Sample.Count() > 0 {
		if v, err := res.Sample.Quantile(0.99); err == nil {
			p99 = us(v)
		}
	}
	misses, fetches, delayed, peak := "-", "-", "-", "-"
	if res.Sim != nil {
		misses = fmt.Sprintf("%d", res.Sim.MissCount)
		fetches = fmt.Sprintf("%d", res.Sim.BackendFetches)
		delayed = fmt.Sprintf("%d", res.Sim.DelayedHits)
	}
	if res.Live != nil {
		misses = fmt.Sprintf("%d", res.Live.Misses)
	}
	if res.DB != nil {
		fetches = fmt.Sprintf("%d", res.DB.Lookups)
		peak = fmt.Sprintf("%d", res.DB.QueuePeak)
	}
	if res.Coalesce != nil {
		delayed = fmt.Sprintf("%d", res.Coalesce.FanIns)
	}
	total := us(res.Point())
	if res.Total.Lo != res.Total.Hi {
		total = fmt.Sprintf("%s ~ %s", us(res.Total.Lo), us(res.Total.Hi))
	}
	return []string{label, total, us(res.TD), p99, misses, fetches, delayed, peak}
}

// HotKey contrasts the naive miss path (every miss fetches) with
// single-flight coalescing (concurrent misses on a key share one
// fetch) on every plane, under a hot Zipf miss keyspace:
//
//   - model: Theorem 1 totals are identical by memorylessness (the
//     residual of an Exp(µ_D) window is Exp(µ_D)); what the analysis
//     predicts to change is the backend fetch rate Λ·r·(1−D) with D
//     the delayed-hit fraction (plane.DelayedHitFraction).
//   - sim: the composition simulator draws per-key fetch windows on
//     the virtual timeline and reports fetches vs delayed hits.
//   - sim faulted: a stalled database (every lookup +10ms) — naive
//     multiplies the stall by the herd, coalescing pays it once per
//     key window.
//   - live: the real TCP stack with a bounded single-queue backend, a
//     steady-miss hot keyspace (negative fill TTL so write-backs never
//     mask misses) — the naive herd saturates the database queue
//     (watch queue peak) while coalescing keeps it near one in-flight
//     fetch per hot key.
func HotKey(b Budget) (*Report, error) {
	start := time.Now()
	model := hotKeyModel()
	faults, err := fault.ParseSchedule(hotKeyDBFault)
	if err != nil {
		return nil, err
	}

	prep := func(coalesce bool, faulted bool, seedOffset uint64) plane.Scenario {
		s := scenarioFor("hotkey", model, b, seedOffset)
		s.Coalesce = coalesce
		s.Keys = hotKeyKeys
		s.ZipfS = hotKeyZipfS
		if faulted {
			s.Faults = faults
		}
		return s
	}

	var rows [][]string
	type leg struct {
		label    string
		p        plane.Plane
		coalesce bool
		faulted  bool
	}
	legs := []leg{
		{"model naive", plane.ModelPlane{}, false, false},
		{"model coalesced", plane.ModelPlane{}, true, false},
		{"sim naive", plane.SimPlane{}, false, false},
		{"sim coalesced", plane.SimPlane{}, true, false},
		{"sim naive faulted", plane.SimPlane{}, false, true},
		{"sim coalesced faulted", plane.SimPlane{}, true, true},
	}
	for _, l := range legs {
		res, err := l.p.Run(context.Background(), prep(l.coalesce, l.faulted, 0))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.label, err)
		}
		rows = append(rows, hotKeyRow(l.label, res))
	}

	// --- live legs: scaled rates, bounded single-queue backend ---
	liveLeg := func(coalesce bool) (*plane.Result, error) {
		s := plane.Scenario{
			Name:         "hotkey-live",
			N:            1,
			LoadRatios:   core.BalancedLoad(2),
			TotalKeyRate: 1200,
			Q:            0.1,
			Xi:           0.15,
			MuS:          4000,
			MissRatio:    0.5,
			MuD:          200,
			Ops:          5000,
			Workers:      32,
			Seed:         b.Seed,
			Keys:         8,
			ZipfS:        4, // one mega-hot key carries ~93% of misses
			FillTTL:      -time.Second,
			DBQueueDepth: 64,
			Coalesce:     coalesce,
		}
		return plane.LivePlane{PoolSize: 16}.Run(context.Background(), s)
	}
	naive, err := liveLeg(false)
	if err != nil {
		return nil, fmt.Errorf("live naive: %w", err)
	}
	coal, err := liveLeg(true)
	if err != nil {
		return nil, fmt.Errorf("live coalesced: %w", err)
	}
	rows = append(rows, hotKeyRow("live naive", naive), hotKeyRow("live coalesced", coal))

	// Analytic prediction for the sim legs' fetch savings.
	lambdaMiss := model.TotalKeyRate * model.MissRatio
	d, err := plane.DelayedHitFraction(lambdaMiss, model.MuD, hotKeyKeys, hotKeyZipfS)
	if err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("predicted delayed-hit fraction D = %.2f (λ_miss=%.0f/s, µD=%.0f, "+
			"Zipf %.1f over %d keys): coalescing should cut backend fetches to ~%.0f%% of misses",
			d, lambdaMiss, model.MuD, hotKeyZipfS, hotKeyKeys, 100*(1-d)),
		"model totals are identical with coalescing on/off by memorylessness (the residual " +
			"of an Exp(µD) fetch window is Exp(µD)); coalescing moves backend load, not the " +
			"per-request latency bound",
		"sim faulted legs share " + hotKeyDBFault + ": naive pays the stall once per miss, " +
			"coalesced once per key window (delayed hits inherit the leader's stretched window)",
		"live legs use a steady-miss hot keyspace (FillTTL < 0 so write-backs never mask " +
			"misses) against a single-queue µD=200/s backend bounded at depth 64: the naive " +
			"herd saturates the queue, coalescing collapses it to ~1 in-flight fetch per hot key",
		fmt.Sprintf("live naive: %d issued, %d errors (queue-full sheds), queue peak %s; "+
			"live coalesced: %d issued, %d errors, %d fan-ins",
			naive.Live.Issued, naive.Live.Errors, rows[len(rows)-2][7],
			coal.Live.Issued, coal.Live.Errors, coalFanIns(coal)),
	}
	return &Report{
		ID:    "hotkey",
		Title: "hot-key thundering herd: naive vs single-flight coalesced miss path on every plane",
		Columns: []string{"leg", "E[T(N)]", "E[TD(N)]", "p99",
			"misses", "db fetches", "delayed hits", "queue peak"},
		Rows:    rows,
		Notes:   notes,
		Elapsed: time.Since(start),
	}, nil
}

func coalFanIns(res *plane.Result) int64 {
	if res.Coalesce == nil {
		return 0
	}
	return res.Coalesce.FanIns
}
