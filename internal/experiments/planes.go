package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/plane"
	"memqlat/internal/telemetry"
	"memqlat/internal/workload"
)

// scenarioFor lifts a model configuration into a plane.Scenario sized
// by the Budget. Every runner goes through this, so a Budget means the
// same measurement effort on every plane.
func scenarioFor(name string, model *core.Config, b Budget, seedOffset uint64) plane.Scenario {
	s := plane.FromConfig(name, model)
	s.Requests = b.Requests
	s.KeysPerServer = b.KeysPerServer
	s.Seed = b.Seed + seedOffset
	return s
}

// simRun evaluates the scenario on the composition-simulator plane.
func simRun(name string, model *core.Config, b Budget, seedOffset uint64) (*plane.Result, error) {
	return plane.SimPlane{}.Run(context.Background(), scenarioFor(name, model, b, seedOffset))
}

// modelRun evaluates the scenario on the analytical plane.
func modelRun(name string, model *core.Config, b Budget) (*plane.Result, error) {
	return plane.ModelPlane{}.Run(context.Background(), scenarioFor(name, model, b, 0))
}

// breakdownNote renders a Result's per-stage telemetry for a report
// note, in stage order.
func breakdownNote(r *plane.Result) string {
	if r.Breakdown.Empty() {
		return r.Plane + " plane recorded no telemetry"
	}
	out := r.Plane + " stage means:"
	for _, st := range telemetry.Stages() {
		ss, ok := r.Breakdown[st]
		if !ok || ss.Count == 0 {
			continue
		}
		out += fmt.Sprintf(" %s %s", st, us(ss.Mean))
	}
	return out
}

// CrossPlane runs the Facebook workload through every deterministic
// plane and tabulates the common Result surface side by side: the
// totals, the TN/TS/TD decomposition, and the per-stage telemetry
// breakdown. It is the harness's headline artifact — the paper's whole
// evaluation (model vs simulation vs measurement) as one table. The
// live plane is excluded here because it needs wall-clock time at
// scaled-down rates; `repro -run live` covers it.
func CrossPlane(b Budget) (*Report, error) {
	start := time.Now()
	model := workload.Facebook()
	planes := []plane.Plane{
		plane.ModelPlane{},
		plane.SimPlane{},
		plane.SimPlane{Mode: plane.SimIntegrated},
	}
	var rows [][]string
	for _, p := range planes {
		s := scenarioFor("facebook", model, b, 0)
		if p.Name() == "sim-integrated" && s.Requests > 6000 {
			s.Requests = 6000 // event-driven mode is the expensive one
		}
		res, err := p.Run(context.Background(), s)
		if err != nil {
			return nil, fmt.Errorf("%s plane: %w", p.Name(), err)
		}
		total := us(res.Point())
		ts := us(res.TS.Mid())
		if res.Total.Lo != res.Total.Hi {
			total = fmt.Sprintf("%s ~ %s", us(res.Total.Lo), us(res.Total.Hi))
			ts = fmt.Sprintf("%s ~ %s", us(res.TS.Lo), us(res.TS.Hi))
		}
		row := []string{p.Name(), total, ts, us(res.TD)}
		for _, st := range telemetry.Stages() {
			row = append(row, us(res.Breakdown.MeanOf(st)))
		}
		rows = append(rows, row)
	}
	columns := []string{"plane", "E[T(N)]", "E[TS(N)]", "E[TD(N)]"}
	for _, st := range telemetry.Stages() {
		columns = append(columns, st.String())
	}
	return &Report{
		ID:      "crossplane",
		Title:   "one scenario, every plane: Facebook workload through model / sim / sim-integrated",
		Columns: columns,
		Rows:    rows,
		Notes: []string{
			"per-stage columns are telemetry means: analytic predictions on the model " +
				"plane, measured per-key/per-request stage latencies on the simulator planes",
			"the sim-integrated row drops the §3 independence assumption; its gap vs the " +
				"sim row is the assumption's cost (see ext-integrated)",
			"the live TCP plane reports the same surface at scaled rates: repro -run live",
		},
		Elapsed: time.Since(start),
	}, nil
}
