package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/fault"
	"memqlat/internal/plane"
	"memqlat/internal/telemetry"
	"memqlat/internal/workload"
)

// scenarioFor lifts a model configuration into a plane.Scenario sized
// by the Budget. Every runner goes through this, so a Budget means the
// same measurement effort on every plane.
func scenarioFor(name string, model *core.Config, b Budget, seedOffset uint64) plane.Scenario {
	s := plane.FromConfig(name, model)
	s.Requests = b.Requests
	s.KeysPerServer = b.KeysPerServer
	s.Seed = b.Seed + seedOffset
	return s
}

// simRun evaluates the scenario on the composition-simulator plane.
func simRun(name string, model *core.Config, b Budget, seedOffset uint64) (*plane.Result, error) {
	return plane.SimPlane{}.Run(context.Background(), scenarioFor(name, model, b, seedOffset))
}

// modelRun evaluates the scenario on the analytical plane.
func modelRun(name string, model *core.Config, b Budget) (*plane.Result, error) {
	return plane.ModelPlane{}.Run(context.Background(), scenarioFor(name, model, b, 0))
}

// breakdownNote renders a Result's per-stage telemetry for a report
// note, in stage order.
func breakdownNote(r *plane.Result) string {
	if r.Breakdown.Empty() {
		return r.Plane + " plane recorded no telemetry"
	}
	out := r.Plane + " stage means:"
	for _, st := range telemetry.Stages() {
		ss, ok := r.Breakdown[st]
		if !ok || ss.Count == 0 {
			continue
		}
		out += fmt.Sprintf(" %s %s", st, us(ss.Mean))
	}
	return out
}

// crossPlaneFaults is the canonical demonstration schedule: a mild
// slowdown on server 0 (≈1µs mean extra service, pushing ρ from 0.78
// to ≈0.84 — degraded but still inside the ξ=0.15 burst-tolerance
// cliff) plus a 2% reply-drop on server 1 whose 2ms timeout stand-in
// dominates the tail.
const crossPlaneFaults = "slow:srv=0,p=0.05,delay=20us;drop:srv=1,p=0.02,delay=2ms"

// crossPlaneRow formats one Result into a crossplane table row.
func crossPlaneRow(label string, res *plane.Result) []string {
	total := us(res.Point())
	ts := us(res.TS.Mid())
	if res.Total.Lo != res.Total.Hi {
		total = fmt.Sprintf("%s ~ %s", us(res.Total.Lo), us(res.Total.Hi))
		ts = fmt.Sprintf("%s ~ %s", us(res.TS.Lo), us(res.TS.Hi))
	}
	row := []string{label, total, ts, us(res.TD)}
	for _, st := range telemetry.Stages() {
		row = append(row, us(res.Breakdown.MeanOf(st)))
	}
	return row
}

// crossPlaneQuantile is one quantile level of the predicted-vs-observed
// block: name labels the rows, p indexes the total-latency sample, of
// projects the per-stage statistic.
type crossPlaneQuantile struct {
	name string
	p    float64
	of   func(telemetry.StageStats) float64
}

func crossPlaneQuantiles() []crossPlaneQuantile {
	return []crossPlaneQuantile{
		{"p50", 0.50, func(s telemetry.StageStats) float64 { return s.P50 }},
		{"p95", 0.95, func(s telemetry.StageStats) float64 { return s.P95 }},
		{"p99", 0.99, func(s telemetry.StageStats) float64 { return s.P99 }},
	}
}

// crossPlaneQuantileRow formats one quantile row for a Result: the
// model plane's entries are analytic shape predictions (exponential
// service/wait/miss quantiles, point-mass fork-join), the measured
// planes' are sample quantiles of the same stages — so each quantile
// group reads predicted-vs-observed down the column.
func crossPlaneQuantileRow(label string, res *plane.Result, q crossPlaneQuantile) []string {
	total := "-"
	if res.Sample != nil && res.Sample.Count() > 0 {
		if v, err := res.Sample.Quantile(q.p); err == nil {
			total = us(v)
		}
	}
	row := []string{label + " " + q.name, total, "-", "-"}
	for _, st := range telemetry.Stages() {
		row = append(row, us(q.of(res.Breakdown[st])))
	}
	return row
}

// CrossPlane runs the Facebook workload through every deterministic
// plane and tabulates the common Result surface side by side: the
// totals, the TN/TS/TD decomposition, and the per-stage telemetry
// breakdown — first healthy, then under the shared fault schedule with
// and without the resilience policies, so the healthy-vs-faulted gap
// and what recovery buys back are read off the same table. It is the
// harness's headline artifact — the paper's whole evaluation (model vs
// simulation vs measurement) as one table. The live plane is excluded
// here because it needs wall-clock time at scaled-down rates;
// `repro -run live` covers it.
func CrossPlane(b Budget) (*Report, error) {
	start := time.Now()
	model := workload.Facebook()
	faults, err := fault.ParseSchedule(crossPlaneFaults)
	if err != nil {
		return nil, err
	}
	resilience := fault.Resilience{
		Retries:          2,
		RetryBackoff:     100e-6,
		BreakerThreshold: 0.5,
	}
	runs := []struct {
		label string
		p     plane.Plane
		mut   func(*plane.Scenario)
	}{
		{"model", plane.ModelPlane{}, nil},
		{"sim", plane.SimPlane{}, nil},
		{"sim-integrated", plane.SimPlane{Mode: plane.SimIntegrated}, nil},
		{"sim-integrated faulted", plane.SimPlane{Mode: plane.SimIntegrated},
			func(s *plane.Scenario) { s.Faults = faults }},
		{"sim faulted", plane.SimPlane{},
			func(s *plane.Scenario) { s.Faults = faults }},
		{"sim faulted+resilient", plane.SimPlane{},
			func(s *plane.Scenario) { s.Faults, s.Resilience = faults, resilience }},
	}
	var rows [][]string
	notes := []string{
		"per-stage columns are telemetry means: analytic predictions on the model " +
			"plane, measured per-key/per-request stage latencies on the simulator planes",
		"the sim-integrated row drops the §3 independence assumption; its gap vs the " +
			"sim row is the assumption's cost (see ext-integrated)",
		"faulted rows share the schedule " + crossPlaneFaults + "; the resilient row " +
			"adds 2 read retries and a 50% circuit breaker (the model has no failure " +
			"modes — the faulted-vs-model gap is what Theorem 1 cannot see)",
		"the live TCP plane reports the same surface at scaled rates: repro -run live",
	}
	type labeled struct {
		label string
		res   *plane.Result
	}
	var results []labeled
	for _, r := range runs {
		s := scenarioFor("facebook", model, b, 0)
		if r.p.Name() == "sim-integrated" && s.Requests > 6000 {
			s.Requests = 6000 // event-driven mode is the expensive one
		}
		if r.mut != nil {
			r.mut(&s)
		}
		res, err := r.p.Run(context.Background(), s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.label, err)
		}
		rows = append(rows, crossPlaneRow(r.label, res))
		results = append(results, labeled{r.label, res})
		if res.Sim != nil && (res.Sim.FailedKeys > 0 || res.Sim.ShedKeys > 0) {
			notes = append(notes, fmt.Sprintf(
				"%s: %d/%d keys failed, %d shed, %d/%d requests degraded",
				r.label, res.Sim.FailedKeys, res.Sim.KeyCount, res.Sim.ShedKeys,
				res.Sim.DegradedRequests, res.Sim.Requests))
		}
	}
	// Predicted-vs-observed quantile block: for each level, the model's
	// analytic stage quantiles directly above every measured plane's
	// sample quantiles of the same stages.
	for _, q := range crossPlaneQuantiles() {
		for _, lr := range results {
			rows = append(rows, crossPlaneQuantileRow(lr.label, lr.res, q))
		}
	}
	notes = append(notes,
		"quantile rows diff the model's distributional shape against the measured "+
			"samples: service/queue-wait/miss are exponential predictions "+
			"(−ln(1−p)·mean), fork_join an analytic point mass; E[T(N)] on measured "+
			"quantile rows is the sample quantile of the total")
	columns := []string{"plane", "E[T(N)]", "E[TS(N)]", "E[TD(N)]"}
	for _, st := range telemetry.Stages() {
		columns = append(columns, st.String())
	}
	return &Report{
		ID:      "crossplane",
		Title:   "one scenario, every plane: Facebook workload through model / sim / sim-integrated, healthy and faulted",
		Columns: columns,
		Rows:    rows,
		Notes:   notes,
		Elapsed: time.Since(start),
	}, nil
}
