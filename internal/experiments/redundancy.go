package experiments

import (
	"fmt"
	"time"

	"memqlat/internal/sim"
	"memqlat/internal/workload"
)

// ExtRedundancy evaluates hedged (redundant) reads inside the paper's
// model — the optimization its related work cites (Vulimiri et al.,
// C3): send each key to two replicas, keep the first answer. The hedge
// thins the per-key tail but doubles every server's load, producing a
// utilization crossover that both the extended theory and the simulator
// locate.
func ExtRedundancy(b Budget) (*Report, error) {
	start := time.Now()
	base := workload.Facebook()
	crossover, err := base.RedundancyCrossover(2)
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for i, rho := range []float64{0.1, 0.2, 0.3, 0.4, 0.45} {
		model := workload.WithLambda(rho * workload.FacebookMuS)
		tsBase, err := model.ExpectedTSPoint()
		if err != nil {
			return nil, err
		}
		tsRed, err := model.ExpectedTSPointRedundant(2, true)
		if err != nil {
			return nil, err
		}
		resBase, err := sim.SimulateRequests(sim.RequestConfig{
			Model: model, Requests: b.Requests, KeysPerServer: b.KeysPerServer,
			Seed: b.Seed + 1200 + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		simBase, err := resBase.TSQuantileEstimate(model)
		if err != nil {
			return nil, err
		}
		resRed, err := sim.SimulateRequests(sim.RequestConfig{
			Model: model, Requests: b.Requests, KeysPerServer: b.KeysPerServer,
			ReadReplicas: 2,
			Seed:         b.Seed + 1300 + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		simRed, err := resRed.TSQuantileEstimate(model)
		if err != nil {
			return nil, err
		}
		verdict := "hedge wins"
		if tsRed >= tsBase {
			verdict = "hedge LOSES"
		}
		rows = append(rows, []string{
			pct(rho), us(tsBase), us(tsRed), us(simBase), us(simRed), verdict,
		})
	}
	return &Report{
		ID:    "ext-redundancy",
		Title: "EXTENSION: 2-way hedged reads vs baseline (load doubled by the hedge)",
		Columns: []string{"base ρS", "theory base", "theory hedged",
			"sim base", "sim hedged", "verdict"},
		Rows: rows,
		Notes: []string{
			fmt.Sprintf("theory crossover: hedging helps below base ρS ≈ %s and hurts above it", pct(crossover)),
			"not in the paper: its related-work §2.2 cites redundancy (Vulimiri et al., C3) — " +
				"this quantifies it inside the paper's own GI^X/M/1 model",
		},
		Elapsed: time.Since(start),
	}, nil
}
