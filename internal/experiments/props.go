package experiments

import (
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/dist"
	"memqlat/internal/workload"
)

// Prop1 checks Proposition 1 numerically: the closed-form p1-boosted
// bounds must contain the exact composite (eq. 11) quantile for random
// unbalanced load splits.
func Prop1(b Budget) (*Report, error) {
	start := time.Now()
	rng := dist.NewRand(b.Seed + 700)
	var rows [][]string
	violations := 0
	for trial := 0; trial < 8; trial++ {
		// Random 4-way split, scaled so the heaviest server stays stable.
		weights := make([]float64, 4)
		var sum float64
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()
			sum += weights[i]
		}
		p1 := 0.0
		for i := range weights {
			weights[i] /= sum
			if weights[i] > p1 {
				p1 = weights[i]
			}
		}
		model := workload.Facebook()
		model.LoadRatios = weights
		// Keep the heaviest server at ~70% utilization.
		model.TotalKeyRate = 0.7 * model.MuS / p1

		exact, err := model.ExpectedTSBounds()
		if err != nil {
			return nil, err
		}
		prop1, err := model.Proposition1TSBounds()
		if err != nil {
			return nil, err
		}
		holds := prop1.Lo <= exact.Lo*1.001 && prop1.Hi >= exact.Hi*0.999
		if !holds {
			violations++
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p1),
			fmt.Sprintf("[%s, %s]", us(exact.Lo), us(exact.Hi)),
			fmt.Sprintf("[%s, %s]", us(prop1.Lo), us(prop1.Hi)),
			fmt.Sprintf("%t", holds),
		})
	}
	notes := []string{"Proposition 1 bounds must contain the exact eq. 11 composite bounds"}
	if violations > 0 {
		notes = append(notes, fmt.Sprintf("VIOLATIONS: %d", violations))
	}
	return &Report{
		ID:      "prop1",
		Title:   "Proposition 1 closed-form bounds vs exact composite (random splits)",
		Columns: []string{"p1", "exact eq.11 bounds", "Prop.1 bounds", "contained"},
		Rows:    rows,
		Notes:   notes,
		Elapsed: time.Since(start),
	}, nil
}

// Prop2 checks Proposition 2: jointly scaling (Λ, µS) leaves δ
// unchanged and scales E[TS(N)] by 1/c.
func Prop2(b Budget) (*Report, error) {
	start := time.Now()
	model := workload.Facebook()
	var rows [][]string
	for _, scale := range []float64{0.1, 0.5, 2, 10, 100} {
		dErr, lErr, err := core.Proposition2Invariant(model, scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", scale),
			fmt.Sprintf("%.2e", dErr),
			fmt.Sprintf("%.2e", lErr),
		})
	}
	_ = b
	return &Report{
		ID:      "prop2",
		Title:   "Proposition 2 scale invariance (δ constant, latency ∝ 1/c)",
		Columns: []string{"scale c", "δ rel. error", "latency rel. error"},
		Rows:    rows,
		Notes:   []string{"errors should be at numerical-solver noise level (≪1e-3)"},
		Elapsed: time.Since(start),
	}, nil
}
