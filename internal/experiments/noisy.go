package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/plane"
	"memqlat/internal/tenant"
)

// noisyModel is a two-server cluster offered 1.2× its capacity — the
// noisy-neighbor regime where an unthrottled tenant would push every
// shared queue past the latency cliff. The proxy's token buckets shed
// the aggressor's excess before it reaches the queues, so the stages
// are priced (and measured) at the admitted Λ′, not the offered Λ.
func noisyModel() *core.Config {
	return &core.Config{
		N:              10,
		LoadRatios:     core.BalancedLoad(2),
		TotalKeyRate:   noisyOffered,
		Q:              0.1,
		Xi:             0.15,
		MuS:            80000,
		MissRatio:      0.02,
		MuD:            1000,
		NetworkLatency: 20e-6,
	}
}

const (
	// noisyOffered is the offered key rate Λ: 1.2× the 2×80K cluster
	// capacity, unservable as offered (ρ = 1.20).
	noisyOffered = 192000.0
	// noisyQuota caps the aggressor at a third of its offered half, so
	// admitted Λ′ = 0.5Λ + Λ/6 = (2/3)Λ lands the shared stages at
	// ρ = 0.80 — comfortably inside the Theorem 1 regime.
	noisyQuota = noisyOffered / 2 / 3
)

// noisyTenants is the two-tenant mix: a victim inside its contract
// (unlimited) and an aggressor offering 3× its op quota.
func noisyTenants() []tenant.Spec {
	return []tenant.Spec{
		{Name: "victim", Share: 0.5},
		{Name: "aggressor", Rate: noisyQuota, Share: 0.5},
	}
}

// noisyRows formats one leg: a row per tenant (offered vs admitted
// rate, realized shed counts, per-tenant p99) plus an "all" row with
// the leg's end-to-end total over the admitted traffic.
func noisyRows(label string, res *plane.Result) [][]string {
	rows := make([][]string, 0, len(res.Tenants)+1)
	for _, tr := range res.Tenants {
		issued, shed := "-", "-"
		if tr.Issued > 0 {
			issued = fmt.Sprintf("%d", tr.Issued)
			shed = fmt.Sprintf("%d", tr.Shed)
		}
		p99 := "-"
		if tr.Latency != nil && tr.Latency.Count() > 0 {
			if v, err := tr.Latency.Quantile(0.99); err == nil {
				p99 = us(v)
			}
		}
		rows = append(rows, []string{
			label, tr.Name + " (" + tr.Class + ")",
			fmt.Sprintf("%.0f", tr.Offered), fmt.Sprintf("%.0f", tr.Admitted),
			pct(1 - tr.Admitted/tr.Offered), issued, shed, p99, "-",
		})
	}
	p99 := "-"
	if res.Sample != nil && res.Sample.Count() > 0 {
		if v, err := res.Sample.Quantile(0.99); err == nil {
			p99 = us(v)
		}
	}
	total := us(res.Point())
	if res.Total.Lo != res.Total.Hi {
		total = fmt.Sprintf("%s ~ %s", us(res.Total.Lo), us(res.Total.Hi))
	}
	var offered, admitted float64
	for _, tr := range res.Tenants {
		offered += tr.Offered
		admitted += tr.Admitted
	}
	rows = append(rows, []string{
		label, "all",
		fmt.Sprintf("%.0f", offered), fmt.Sprintf("%.0f", admitted),
		pct(1 - admitted/offered), "-", "-", p99, total,
	})
	return rows
}

// Noisy runs the noisy-neighbor QoS experiment on every plane: a
// victim tenant inside its contract shares the cluster with an
// aggressor offering 3× its op quota, and the proxy's token buckets
// shed the excess before the shared queues.
//
//   - model: each tenant's admitted rate is min(offered, quota); the
//     shared GI^X/M/1 stages are priced at Λ′ = Σ admitted — so the
//     victim's Theorem 1 band is computable even though the offered
//     load (ρ = 1.20) would be unservable.
//   - sim: the composition simulator draws per-request tenants from
//     the Share mix on the offered virtual timeline and runs the same
//     token-bucket code; shed keys draw nothing downstream.
//   - live: the real proxy runs the real limiter under a two-tenant
//     load mix at scaled rates; sheds come back as SERVER_ERROR lines
//     and are excluded from the latency sample.
//
// The point of the table: the aggressor sheds ≈2/3 of what it offers
// on every plane, the victim sheds nothing, and the victim's p99 stays
// in the healthy (ρ = 0.80) band instead of the cliff the offered load
// implies.
func Noisy(b Budget) (*Report, error) {
	start := time.Now()
	model := noisyModel()

	prep := func(seedOffset uint64) plane.Scenario {
		s := scenarioFor("noisy", model, b, seedOffset)
		s.Proxy = &plane.ProxySpec{}
		s.Tenants = noisyTenants()
		return s
	}

	var rows [][]string
	legs := []struct {
		label string
		p     plane.Plane
	}{
		{"model", plane.ModelPlane{}},
		{"sim", plane.SimPlane{}},
	}
	var simRes *plane.Result
	for _, l := range legs {
		res, err := l.p.Run(context.Background(), prep(0))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.label, err)
		}
		if l.label == "sim" {
			simRes = res
		}
		rows = append(rows, noisyRows(l.label, res)...)
	}

	// --- live leg: scaled rates, real proxy + limiter + loadgen ---
	liveScenario := plane.Scenario{
		Name:         "noisy-live",
		N:            1,
		LoadRatios:   core.BalancedLoad(2),
		TotalKeyRate: 1600,
		Q:            0.1,
		Xi:           0.15,
		MuS:          850,
		MissRatio:    0.02,
		MuD:          2000,
		Ops:          6000,
		Workers:      32,
		Seed:         b.Seed,
		Proxy:        &plane.ProxySpec{},
		Tenants: []tenant.Spec{
			{Name: "victim", Share: 0.5},
			{Name: "aggressor", Rate: 1600 * 0.5 / 3, Share: 0.5},
		},
	}
	live, err := plane.LivePlane{PoolSize: 16}.Run(context.Background(), liveScenario)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	rows = append(rows, noisyRows("live", live)...)

	admitted := noisyOffered/2 + noisyQuota
	notes := []string{
		fmt.Sprintf("offered Λ = %.0f/s is 1.2× the 2×80K cluster capacity; the aggressor's "+
			"quota (%.0f/s) sheds its excess at the proxy, so the shared stages run at "+
			"Λ′ = %.0f/s (ρ = %.2f)", noisyOffered, noisyQuota, admitted,
			admitted/(2*model.MuS)),
		"the victim is unlimited and inside its 50% share: every plane must show it " +
			"shedding nothing while the aggressor sheds ≈2/3 of what it offers",
		"model rows are priced rates (no per-tenant sample: issued/shed are analytic, " +
			"shown as shed %); sim/live rows count real admissions and sheds through the " +
			"same token-bucket code on virtual vs wall clocks",
		"live leg runs the real proxy limiter at scaled rates (Λ = 1600/s over two " +
			"µS = 850/s servers): sheds come back as SERVER_ERROR tenant over quota and " +
			"are excluded from the latency histograms",
	}
	if simRes != nil && simRes.Sim != nil {
		notes = append(notes, fmt.Sprintf(
			"sim shed accounting: %d keys shed, %d requests fully shed out of %d",
			simRes.Sim.TenantShedKeys, simRes.Sim.ShedRequests, b.Requests))
	}
	return &Report{
		ID:    "noisy",
		Title: "noisy neighbor: token-bucket QoS sheds an over-quota aggressor on every plane",
		Columns: []string{"leg", "tenant", "offered/s", "admitted/s", "shed %",
			"issued", "shed", "p99", "E[T(N)]"},
		Rows:    rows,
		Notes:   notes,
		Elapsed: time.Since(start),
	}, nil
}
