package experiments

import (
	"fmt"
	"time"

	"memqlat/internal/workload"
)

// ExtElasticity answers the paper's motivating question numerically:
// "which factor has the most significant impact on the latency and how
// much improvement can be achieved by optimizing each factor" (§1).
// Each factor's elasticity d ln E[T(N)] / d ln x is evaluated at two
// operating points — the Facebook workload (ρS = 78%, past the cliff
// shoulder) and a half-loaded variant — showing how the ranking moves
// with utilization.
func ExtElasticity(Budget) (*Report, error) {
	start := time.Now()
	high := workload.Facebook()
	low := workload.Facebook()
	low.TotalKeyRate = high.TotalKeyRate / 2

	esHigh, err := high.Elasticities()
	if err != nil {
		return nil, err
	}
	esLow, err := low.Elasticities()
	if err != nil {
		return nil, err
	}
	lowByFactor := make(map[string]float64, len(esLow))
	for _, e := range esLow {
		lowByFactor[e.Factor] = e.Value
	}
	var rows [][]string
	for rank, e := range esHigh {
		rows = append(rows, []string{
			fmt.Sprintf("%d", rank+1),
			e.Factor,
			e.Description,
			fmt.Sprintf("%+.2f", e.Value),
			fmt.Sprintf("%+.2f", lowByFactor[e.Factor]),
		})
	}
	return &Report{
		ID:    "ext-elasticity",
		Title: "EXTENSION: factor elasticities d ln E[T(N)] / d ln x (the §1 question, numerically)",
		Columns: []string{"rank", "factor", "meaning",
			"elasticity @ρS=78%", "@ρS=39%"},
		Rows: rows,
		Notes: []string{
			"positive: increasing the factor increases latency; |value| ranks leverage",
			"reading: a +1% change in the top-ranked factor moves end-user latency by " +
				"|elasticity|% — the quantitative form of the paper's §5.3 recommendations",
		},
		Elapsed: time.Since(start),
	}, nil
}
