package experiments

import (
	"fmt"
	"math"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/dist"
	"memqlat/internal/queueing"
	"memqlat/internal/sim"
	"memqlat/internal/workload"
)

// ExtTails extends the paper beyond expectations: full tail quantiles of
// T_S(N) (bounded via the eq. 3 sandwich) and T_D(N) (exact closed-form
// CDF (1−r·e^{−µD·t})^N), validated against the simulator's per-request
// maxima. Production SLOs are percentile-based, so this is the form a
// deployer actually consumes.
func ExtTails(b Budget) (*Report, error) {
	start := time.Now()
	model := workload.Facebook()
	levels := []float64{0.5, 0.9, 0.99, 0.999}
	reports, err := model.Tails(levels)
	if err != nil {
		return nil, err
	}
	res, err := sim.SimulateRequests(sim.RequestConfig{
		Model:         model,
		Requests:      b.Requests * 4, // tails need more samples
		KeysPerServer: b.KeysPerServer,
		Seed:          b.Seed + 900,
	})
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for i, k := range levels {
		tsSim, err := res.TS.Quantile(k)
		if err != nil {
			return nil, err
		}
		tdSim, err := res.TD.Quantile(k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("p%g", k*100),
			fmt.Sprintf("[%s, %s]", us(reports[i].TS.Lo), us(reports[i].TS.Hi)),
			us(tsSim),
			lat(reports[i].TD),
			lat(tdSim),
		})
	}
	return &Report{
		ID:      "ext-tails",
		Title:   "EXTENSION: tail quantiles of TS(N) and TD(N), theory vs simulation",
		Columns: []string{"level", "TS theory bounds", "TS sim", "TD theory (exact)", "TD sim"},
		Rows:    rows,
		Notes: []string{
			"not in the paper: the same model pushed from expectations to percentiles",
			"TD theory is the exact closed form (1 − r·e^{−µD·t})^N, no approximation",
			"deep TS tails (p99+) probe the per-key 0.9999+ quantile: the resampling " +
				"simulator truncates them under small key budgets — use -full for tail studies",
		},
		Elapsed: time.Since(start),
	}, nil
}

// arrivalFamily pairs a label with an ArrivalFactory producing a batch
// inter-arrival distribution of the given rate.
type arrivalFamily struct {
	name string
	make core.ArrivalFactory
	scv  string
}

// ExtArrivals swaps the inter-arrival family at fixed utilization: the
// GI in GI^X/M/1 accepts any renewal process, and the δ machinery
// quantifies how much arrival variability costs. Erlang (smoother than
// Poisson), exponential, Generalized Pareto, and a high-variance
// hyperexponential are compared, theory vs simulation.
func ExtArrivals(b Budget) (*Report, error) {
	start := time.Now()
	families := []arrivalFamily{
		{
			name: "Erlang-4 (SCV 0.25)",
			scv:  "0.25",
			make: func(rate float64) (dist.Interarrival, error) {
				return dist.NewErlang(4, 4*rate)
			},
		},
		{
			name: "Poisson (SCV 1)",
			scv:  "1",
			make: func(rate float64) (dist.Interarrival, error) {
				return dist.NewExponential(rate)
			},
		},
		{
			name: "GPareto ξ=0.15 (SCV 1.43)",
			scv:  "1.43",
			make: func(rate float64) (dist.Interarrival, error) {
				return dist.NewGeneralizedPareto(0.15, rate)
			},
		},
		{
			name: "Hyperexp (SCV 4)",
			scv:  "4",
			make: func(rate float64) (dist.Interarrival, error) {
				// Balanced-means H2 with SCV = 4.
				const scv = 4.0
				p := 0.5 * (1 + math.Sqrt((scv-1)/(scv+1)))
				return dist.NewHyperexponential(
					[]float64{p, 1 - p},
					[]float64{2 * p * rate, 2 * (1 - p) * rate},
				)
			},
		},
	}
	var rows [][]string
	for i, fam := range families {
		model := workload.Facebook()
		model.Arrival = fam.make
		theory, measured, err := tsPoint(model, b, 950+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fam.name, err)
		}
		rows = append(rows, []string{fam.name, fam.scv, us(theory), us(measured)})
	}
	return &Report{
		ID:      "ext-arrivals",
		Title:   "EXTENSION: E[TS(N)] under different inter-arrival families (ρS=78% fixed)",
		Columns: []string{"arrival family", "SCV", "Theorem 1", "Experiment"},
		Rows:    rows,
		Notes: []string{
			"not in the paper: the GI slot of GI^X/M/1 exercised beyond Generalized Pareto — " +
				"latency ranks by arrival variability at identical utilization",
		},
		Elapsed: time.Since(start),
	}, nil
}

// ExtEq6Ablation quantifies the (1−q) factor discrepancy between the
// paper's in-line eq. 6 (δ = L_TX((1−δ)µ_S)) and its Table 1 form
// (δ = L_TX((1−δ)(1−q)µ_S)): only the Table 1 form matches the
// simulated queue, which is why the reproduction uses it (DESIGN §4.1).
func ExtEq6Ablation(b Budget) (*Report, error) {
	start := time.Now()
	model := workload.Facebook()
	gp, err := dist.NewGeneralizedPareto(model.Xi, (1-model.Q)*workload.FacebookLambda)
	if err != nil {
		return nil, err
	}
	// Table 1 form (ours): batch service rate (1-q)µS.
	bqTable1, err := queueing.NewBatchQueue(gp, model.Q, model.MuS)
	if err != nil {
		return nil, err
	}
	deltaT1, err := bqTable1.Delta()
	if err != nil {
		return nil, err
	}
	// In-line eq. 6 form: same fixed point but with µS un-thinned.
	deltaEq6, err := solveInlineEq6(gp, model.Q, model.MuS)
	if err != nil {
		return nil, err
	}
	// Ground truth: simulated mean per-key latency.
	simRes, err := sim.SimulateServer(sim.ServerConfig{
		Interarrival: gp, Q: model.Q, MuS: model.MuS,
		Keys: b.KeysPerServer * 2, Seed: b.Seed + 990,
	})
	if err != nil {
		return nil, err
	}
	meanOf := func(delta float64) float64 {
		return 1 / ((1 - delta) * (1 - model.Q) * model.MuS)
	}
	rows := [][]string{
		{"Table 1 form (used here)", fmt.Sprintf("%.4f", deltaT1), us(meanOf(deltaT1))},
		{"in-line eq. 6 form", fmt.Sprintf("%.4f", deltaEq6), us(meanOf(deltaEq6))},
		{"simulated queue", "-", us(simRes.Mean())},
	}
	return &Report{
		ID:      "ext-eq6",
		Title:   "EXTENSION: eq. 6 (1−q) factor ablation — which δ matches the real queue",
		Columns: []string{"variant", "δ", "implied mean per-key latency"},
		Rows:    rows,
		Notes: []string{
			"the Table 1 fixed point reproduces the simulated mean; dropping the (1−q) " +
				"batch-service thinning (as the in-line eq. 6 prints) underestimates δ",
		},
		Elapsed: time.Since(start),
	}, nil
}

// solveInlineEq6 bisects δ = L_TX((1−δ)·µ_S) — the paper's in-line
// printing of eq. 6, without batch-service thinning.
func solveInlineEq6(arr dist.Interarrival, q, muS float64) (float64, error) {
	_ = q
	h := func(delta float64) float64 {
		return delta - arr.LaplaceTransform((1-delta)*muS)
	}
	lo, hi := 0.0, 1-1e-12
	if h(hi) <= 0 {
		return 0, fmt.Errorf("experiments: inline eq.6 has no interior root")
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if h(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
