package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/fault"
	"memqlat/internal/plane"
	"memqlat/internal/slo"
	"memqlat/internal/telemetry"
)

// Drift-experiment detector settings, shared across every leg so the
// sim and live detections are judged by the same instrument.
const (
	driftWindow = 0.25 // rolling-window length, seconds
	driftK      = 2    // consecutive out-of-band windows before drifting
	driftBand   = 3.0  // multiplicative tolerance around the prediction

	// driftLiveWindow is the live leg's window: longer than the sim's
	// because the wall-clock leg runs at scaled-down rates, and each
	// window must still hold >= MinSamples miss observations.
	driftLiveWindow = 0.5

	// The injected fault: the back-end database turns slow mid-run,
	// stretching the miss penalty >20x past its 1/µD=2ms prediction —
	// far outside any band, so attribution is unambiguous.
	driftFaultFrom  = 1.0 // seconds into the run
	driftFaultDelay = "50ms"

	// Detection must land within this many windows of the fault onset
	// (the ISSUE's acceptance bound).
	driftDetectWithin = 5
)

// driftStage is the stage the fault perturbs; the watchdog must rank
// it as the top drift.
var driftStage = telemetry.StageMissPenalty.String()

// driftScenario is the faulted workload: a miss-heavy mix so the
// database stage carries enough per-window samples to be judged.
func driftScenario(name string, seed uint64, requests int) (plane.Scenario, error) {
	faults, err := fault.ParseSchedule(
		fmt.Sprintf("slow:srv=db,from=%gs,delay=%s", driftFaultFrom, driftFaultDelay))
	if err != nil {
		return plane.Scenario{}, err
	}
	return plane.Scenario{
		Name:         name,
		N:            10,
		LoadRatios:   core.BalancedLoad(2),
		TotalKeyRate: 2000,
		Q:            0.1,
		Xi:           0.15,
		MuS:          4000,
		MissRatio:    0.2,
		MuD:          500,
		Requests:     requests,
		Seed:         seed,
		Faults:       faults,
	}, nil
}

// driftWatchdog anchors a fresh watchdog on the Theorem-1 bands of the
// given scenario. Target arms burn-rate alerting (0 = drift only).
func driftWatchdog(s plane.Scenario, window, target float64) (*slo.Watchdog, error) {
	s.SLO = nil // bands come from the clean model run
	pred, err := plane.PredictedBands(s)
	if err != nil {
		return nil, err
	}
	return slo.NewWatchdog(slo.Config{
		Window:    window,
		K:         driftK,
		Band:      driftBand,
		Target:    target,
		Budget:    0.05,
		Predicted: pred,
	})
}

// driftRow renders one leg's outcome. faultWindow < 0 means the leg is
// unfaulted (a false-alarm check).
func driftRow(leg string, st *slo.Status, faultWindow int64) []string {
	detected := st.FirstDriftWindow(driftStage)
	det, delay := "-", "-"
	if detected >= 0 {
		det = fmt.Sprintf("%d", detected)
		if faultWindow >= 0 {
			delay = fmt.Sprintf("%d", detected-faultWindow)
		}
	}
	fw := "-"
	if faultWindow >= 0 {
		fw = fmt.Sprintf("%d", faultWindow)
	}
	top, mag := st.TopDrift, 0.0
	if top == "" {
		top = "-"
	}
	for _, ss := range st.Stages {
		if ss.Stage == st.TopDrift {
			mag = ss.Magnitude
		}
	}
	return []string{
		leg, fw, det, delay, top, fmt.Sprintf("%.1f", mag),
		fmt.Sprintf("%d/%d", st.DriftAlerts, st.BurnAlerts),
	}
}

// Drift is the watchdog's end-to-end validation, an artifact the paper
// does not have: arm the model-anchored SLO watchdog on a running
// plane, turn the database slow mid-run, and measure how many rolling
// windows pass before the detector fires — and whether it attributes
// the drift to the stage that actually moved (miss_penalty). The
// composition simulator replays the detector on the virtual timeline,
// so the same seed must detect at the identical window (asserted by
// running the leg twice); the live leg repeats the run on the real TCP
// stack under wall-clock windows. A healthy λ ramp through the
// latency-cliff region checks the opposite failure mode: bands
// re-anchored per load point must not false-alarm on load alone.
func Drift(b Budget) (*Report, error) {
	start := time.Now()
	faultWindow := int64(driftFaultFrom / driftWindow)
	var rows [][]string

	// --- sim legs: deterministic replay on the virtual timeline ---
	var simDetected [2]int64
	for i := 0; i < 2; i++ {
		s, err := driftScenario("drift-sim", b.Seed, b.Requests)
		if err != nil {
			return nil, err
		}
		// Target 10ms: the faulted miss path blows the end-to-end SLO,
		// exercising the multi-window burn-rate alert alongside drift.
		wd, err := driftWatchdog(s, driftWindow, 10e-3)
		if err != nil {
			return nil, err
		}
		s.SLO = wd
		res, err := plane.SimPlane{}.Run(context.Background(), s)
		if err != nil {
			return nil, err
		}
		simDetected[i] = res.SLO.FirstDriftWindow(driftStage)
		if simDetected[i] < 0 {
			return nil, fmt.Errorf("drift: sim run %d never detected %s drift", i+1, driftStage)
		}
		if res.SLO.TopDrift != driftStage {
			return nil, fmt.Errorf("drift: sim run %d attributed drift to %q, want %s",
				i+1, res.SLO.TopDrift, driftStage)
		}
		rows = append(rows, driftRow(fmt.Sprintf("sim run %d", i+1), res.SLO, faultWindow))
	}
	if simDetected[0] != simDetected[1] {
		return nil, fmt.Errorf("drift: sim detection not deterministic (window %d vs %d under the same seed)",
			simDetected[0], simDetected[1])
	}
	if simDetected[0] > faultWindow+driftDetectWithin {
		return nil, fmt.Errorf("drift: sim detected at window %d, want <= fault window %d + %d",
			simDetected[0], faultWindow, driftDetectWithin)
	}

	// --- live leg: the same fault on the real TCP stack ---
	// Rates are scaled down until Go timer granularity is negligible
	// against the 2ms shaped service mean; the sharpened queue-wait
	// band then holds on real hardware and the only stage far out of
	// band is the faulted one.
	liveFaults, err := fault.ParseSchedule(
		fmt.Sprintf("slow:srv=db,from=%gs,delay=%s", driftFaultFrom, driftFaultDelay))
	if err != nil {
		return nil, err
	}
	ls := plane.Scenario{
		Name:         "drift-live",
		N:            1, // the loadgen issues per-key gets
		LoadRatios:   core.BalancedLoad(2),
		TotalKeyRate: 300,
		Q:            0.1,
		Xi:           0.15,
		MuS:          500,
		MissRatio:    0.2,
		MuD:          500,
		Ops:          1500,
		Workers:      32,
		Seed:         b.Seed,
		Faults:       liveFaults,
	}
	liveWd, err := driftWatchdog(ls, driftLiveWindow, 0)
	if err != nil {
		return nil, err
	}
	ls.SLO = liveWd
	liveRes, err := plane.LivePlane{PoolSize: 16}.Run(context.Background(), ls)
	if err != nil {
		return nil, err
	}
	liveFaultWindow := int64(driftFaultFrom / driftLiveWindow)
	liveDetected := liveRes.SLO.FirstDriftWindow(driftStage)
	if liveDetected < 0 || liveDetected > liveFaultWindow+driftDetectWithin {
		return nil, fmt.Errorf("drift: live leg detected %s at window %d, want within %d windows of fault window %d",
			driftStage, liveDetected, driftDetectWithin, liveFaultWindow)
	}
	if liveRes.SLO.TopDrift != driftStage {
		return nil, fmt.Errorf("drift: live leg attributed drift to %q, want %s",
			liveRes.SLO.TopDrift, driftStage)
	}
	rows = append(rows, driftRow("live", liveRes.SLO, liveFaultWindow))

	// --- ramp leg: healthy load sweep must stay quiet ---
	for _, lambda := range []float64{2000, 4000, 6000} {
		s, err := driftScenario("drift-ramp", b.Seed, b.Requests)
		if err != nil {
			return nil, err
		}
		s.Faults = fault.Schedule{}
		s.TotalKeyRate = lambda
		wd, err := driftWatchdog(s, driftWindow, 0)
		if err != nil {
			return nil, err
		}
		s.SLO = wd
		res, err := plane.SimPlane{}.Run(context.Background(), s)
		if err != nil {
			return nil, err
		}
		if res.SLO.DriftAlerts > 0 {
			return nil, fmt.Errorf("drift: healthy ramp at λ=%g false-alarmed (%d drift alerts, top %s)",
				lambda, res.SLO.DriftAlerts, res.SLO.TopDrift)
		}
		rows = append(rows, driftRow(fmt.Sprintf("ramp λ=%g (healthy)", lambda), res.SLO, -1))
	}

	return &Report{
		ID:    "drift",
		Title: "SLO watchdog: db-slow fault detection latency across planes, plus a healthy-load false-alarm sweep",
		Columns: []string{"leg", "fault window", "detected window", "delay (windows)",
			"top drift", "magnitude", "drift/burn alerts"},
		Rows: rows,
		Notes: []string{
			fmt.Sprintf("detector: %gs rolling windows, K=%d consecutive windows, band ×%g around the "+
				"Theorem-1 per-stage quantiles (plane.PredictedBands re-anchored per scenario)", driftWindow, driftK, driftBand),
			fmt.Sprintf("fault: database service stretched by %s from t=%gs — the miss_penalty stage "+
				"leaves its 1/µD band while every other stage stays on-model", driftFaultDelay, driftFaultFrom),
			"the two sim runs share a seed: the composition simulator drives the watchdog on the " +
				"virtual timeline, so the detection window is a deterministic function of the seed",
			fmt.Sprintf("the live leg runs the same detector on %gs wall-clock windows over the real "+
				"TCP stack at scaled-down rates; scheduler jitter can move the detection window, "+
				"the attribution must not move", driftLiveWindow),
			"ramp rows re-anchor the bands at each λ and must stay alert-free: load alone is not drift",
		},
		Elapsed: time.Since(start),
	}, nil
}
