package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/plane"
	"memqlat/internal/workload"
)

// ExtIntegrated probes the model's independence assumption (§3: "the
// assumption of independent key arrivals is acceptable"). The
// composition simulator takes the assumption as given; the integrated
// event-driven simulator does not — its per-server arrival process
// EMERGES from fork-join requests whose keys arrive together after the
// network delay, creating correlated batches. Comparing the two (and
// Theorem 1) measures how much reality the assumption gives away.
func ExtIntegrated(b Budget) (*Report, error) {
	start := time.Now()
	// Scaled N keeps the integrated event count tractable; the
	// assumption stress (keys-per-request vs concurrent requests) is
	// preserved by scaling the request rate up correspondingly.
	const n = 20
	var rows [][]string
	for i, rho := range []float64{0.3, 0.5, 0.7, 0.8} {
		model := workload.WithLambda(rho * workload.FacebookMuS)
		model.N = n
		model.MissRatio = 0 // isolate the cache stage
		theory, err := model.ExpectedTSPoint()
		if err != nil {
			return nil, err
		}
		comp, err := simRun("ext-integrated", model, b, 1400+uint64(i))
		if err != nil {
			return nil, err
		}
		compEst := comp.TS.Mid()
		is := scenarioFor("ext-integrated", model, b, 1500+uint64(i))
		if is.Requests > 6000 {
			is.Requests = 6000 // event-driven mode is the expensive one
		}
		integ, err := plane.SimPlane{Mode: plane.SimIntegrated}.Run(context.Background(), is)
		if err != nil {
			return nil, err
		}
		integMean := integ.Integrated.TS.Mean()
		compMean := comp.Sim.TS.Mean()
		gap := (integMean - compMean) / compMean
		rows = append(rows, []string{
			pct(rho), us(theory), us(compEst), us(compMean), us(integMean),
			fmt.Sprintf("%+.0f%%", gap*100),
		})
	}
	return &Report{
		ID:    "ext-integrated",
		Title: fmt.Sprintf("EXTENSION: independence-assumption ablation (N=%d, miss-free)", n),
		Columns: []string{"ρS", "Theorem 1", "composition (§4.5 est)",
			"composition mean-max", "integrated mean-max", "integrated vs comp"},
		Rows: rows,
		Notes: []string{
			"the integrated simulator derives per-server arrivals FROM the fork-join " +
				"request stream (correlated same-request batches) instead of assuming GI^X — " +
				"the last column is the latency cost of the §3 independence assumption",
			"finding: the RELATIVE error is largest at LOW load — a request's own keys " +
				"colliding on a server add a fixed self-queueing cost (≈ keys-per-server × " +
				"service time) that dominates when cross-traffic queueing is small, and " +
				"washes out toward the cliff",
		},
		Elapsed: time.Since(start),
	}, nil
}
