package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/plane"
)

// The tiered sweep spends a fixed hardware budget on two storage
// classes priced per item: RAM at tieredRAMCost units, SSD at
// tieredSSDCost. Every row buys a different RAM:SSD mix with the same
// tieredBudget units, so the table answers the capacity-planning
// question directly: at 4:1 price parity, how much RAM is worth
// trading for a slower-but-bigger extstore tier?
const (
	tieredKeys   = 2000
	tieredZipfS  = 1.0
	tieredMuDisk = 2000.0 // SSD reads at 2× the DB rate (0.5ms mean)

	tieredRAMCost = 4
	tieredSSDCost = 1
	tieredBudget  = 2400
)

// tieredModel is the paper's N=10 baseline with a slow enough backend
// (µ_D = 1000/s) that the miss path dominates: exactly the regime
// where an SSD tier pays.
func tieredModel() *core.Config {
	return &core.Config{
		N:              10,
		LoadRatios:     core.BalancedLoad(2),
		TotalKeyRate:   20000,
		Q:              0.1,
		Xi:             0.15,
		MuS:            80000,
		MissRatio:      0.1, // overwritten per split by the MRC
		MuD:            1000,
		NetworkLatency: 20e-6,
	}
}

// tieredSplit is one point of the sweep: f is the fraction of the
// budget spent on RAM.
type tieredSplit struct {
	ram, ssd int // items each class buys
}

func tieredSplits() []tieredSplit {
	var out []tieredSplit
	for _, f := range []float64{1, 2.0 / 3, 0.5, 1.0 / 3, 1.0 / 6} {
		ramUnits := f * tieredBudget
		out = append(out, tieredSplit{
			ram: int(ramUnits) / tieredRAMCost,
			ssd: (tieredBudget - int(ramUnits)) / tieredSSDCost,
		})
	}
	return out
}

// Tiered sweeps RAM:SSD capacity splits at a fixed total cost through
// the model and simulator planes, plus one scaled live leg with real
// segment files. All planes price the tier from the same miss-ratio
// curve: the MRC over the seeded Zipf trace yields both r (the RAM
// miss ratio at RAMItems) and β (the fraction of those misses the SSD
// absorbs at TotalItems), so the only per-plane difference is how the
// disk read is realized — a blended service rate (model), an explicit
// two-point mixture (sim), or a real pread from a segment file (live).
func Tiered(b Budget) (*Report, error) {
	start := time.Now()
	model := tieredModel()
	ctx := context.Background()

	// prep builds the scenario for one split and returns it with the
	// MRC-derived miss ratio r and disk-hit fraction β attached.
	prep := func(sp tieredSplit) (plane.Scenario, float64, float64, error) {
		s := scenarioFor("tiered", model, b, 0)
		s.Keys = tieredKeys
		s.ZipfS = tieredZipfS
		// The curve probe needs a tier spec even for the all-RAM split;
		// only RAMHit is read from it there.
		probe := s
		probe.Extstore = &plane.ExtstoreSpec{
			RAMItems:   sp.ram,
			TotalItems: max(sp.ram+sp.ssd, sp.ram+1),
			MuDisk:     tieredMuDisk,
		}
		split, err := probe.ExtstoreSplit()
		if err != nil {
			return s, 0, 0, err
		}
		s.MissRatio = 1 - split.RAMHit
		beta := 0.0
		if sp.ssd > 0 {
			s.Extstore = &plane.ExtstoreSpec{
				RAMItems:   sp.ram,
				TotalItems: sp.ram + sp.ssd,
				MuDisk:     tieredMuDisk,
			}
			beta = split.DiskHitFraction()
		}
		return s, s.MissRatio, beta, nil
	}

	var rows [][]string
	for _, sp := range tieredSplits() {
		s, r, beta, err := prep(sp)
		if err != nil {
			return nil, fmt.Errorf("split %d:%d: %w", sp.ram, sp.ssd, err)
		}
		mres, err := (plane.ModelPlane{}).Run(ctx, s)
		if err != nil {
			return nil, fmt.Errorf("model %d:%d: %w", sp.ram, sp.ssd, err)
		}
		sres, err := (plane.SimPlane{}).Run(ctx, s)
		if err != nil {
			return nil, fmt.Errorf("sim %d:%d: %w", sp.ram, sp.ssd, err)
		}
		rows = append(rows, tieredRow(fmt.Sprintf("%d:%d", sp.ram, sp.ssd), r, beta, mres, sres))
	}

	// --- live leg: the mid-sweep split on the real stack, with real
	// segment files in a temp dir, at live-sustainable rates. MissRatio
	// stays 0: the capacity-sized cache produces misses organically.
	liveSpec := &plane.ExtstoreSpec{RAMItems: 200, TotalItems: 1800, MuDisk: tieredMuDisk}
	ls := plane.Scenario{
		Name:         "tiered-live",
		N:            10,
		LoadRatios:   core.BalancedLoad(2),
		TotalKeyRate: 4000,
		Q:            0.1,
		Xi:           0.15,
		MuS:          2000,
		MuD:          1000,
		Ops:          max(b.Requests, 2000),
		Workers:      32,
		Duration:     45 * time.Second,
		Seed:         b.Seed,
		Keys:         tieredKeys,
		ZipfS:        tieredZipfS,
		Extstore:     liveSpec,
	}
	lsplit, err := ls.ExtstoreSplit()
	if err != nil {
		return nil, err
	}
	lres, err := (plane.LivePlane{}).Run(ctx, ls)
	if err != nil {
		return nil, fmt.Errorf("live %d:%d: %w", liveSpec.RAMItems, liveSpec.TotalItems-liveSpec.RAMItems, err)
	}
	rows = append(rows, tieredRow(
		fmt.Sprintf("live %d:%d", liveSpec.RAMItems, liveSpec.TotalItems-liveSpec.RAMItems),
		1-lsplit.RAMHit, lsplit.DiskHitFraction(), nil, lres))

	le := lres.Extstore
	notes := []string{
		fmt.Sprintf("every split spends the same %d cost units at %d:%d RAM:SSD price parity "+
			"(e.g. 600 RAM items ↔ 2400 SSD items); r and β come from one seeded Zipf(%.1f) "+
			"MRC over %d keys, shared verbatim by all planes", tieredBudget,
			tieredRAMCost, tieredSSDCost, tieredZipfS, tieredKeys),
		fmt.Sprintf("µ_disk = %.0f/s sits at 2× µ_D — close enough that the model's blended "+
			"miss-stage rate tracks the sim's explicit hit-or-fetch mixture; widely separated "+
			"rates would make the fork-join max visibly non-exponential", tieredMuDisk),
		"trading RAM for SSD raises r (smaller RAM catches fewer hits) but converts DB misses " +
			"into 0.5ms disk reads: E[T(N)] falls as long as β grows faster than r — the table's " +
			"minimum is the cost-optimal split",
	}
	if le != nil {
		notes = append(notes, fmt.Sprintf(
			"live leg: %d disk hits / %d RAM misses (β=%.2f vs MRC %.2f), %d promotions, "+
				"%d segments holding %d bytes, %d compactions",
			le.DiskHits, le.RAMMisses, le.DiskHitFraction(), lsplit.DiskHitFraction(),
			le.Promotions, le.Segments, le.SegmentBytes, le.Compactions))
	}
	return &Report{
		ID:    "tiered",
		Title: "tiered storage: RAM:SSD splits at fixed cost, priced by one shared MRC",
		Columns: []string{"split ram:ssd", "r", "β pred", "model E[T(N)]",
			"measured E[T(N)]", "p99", "disk hits", "db fetches", "β meas"},
		Rows:    rows,
		Notes:   notes,
		Elapsed: time.Since(start),
	}, nil
}

// tieredRow formats one split: the model band next to the measured
// point (sim or live), plus the tier's hit accounting.
func tieredRow(label string, r, beta float64, mres, meas *plane.Result) []string {
	cells := []string{label, fmt.Sprintf("%.3f", r), fmt.Sprintf("%.2f", beta),
		"-", "-", "-", "-", "-", "-"}
	if mres != nil {
		cells[3] = fmt.Sprintf("%s ~ %s", us(mres.Total.Lo), us(mres.Total.Hi))
	}
	if meas == nil {
		return cells
	}
	cells[4] = us(meas.Point())
	if meas.Sample != nil && meas.Sample.Count() > 0 {
		if v, err := meas.Sample.Quantile(0.99); err == nil {
			cells[5] = us(v)
		}
	}
	if meas.Sim != nil {
		cells[6] = fmt.Sprintf("%d", meas.Sim.DiskHits)
		cells[7] = fmt.Sprintf("%d", meas.Sim.BackendFetches)
	}
	if e := meas.Extstore; e != nil {
		cells[6] = fmt.Sprintf("%d", e.DiskHits)
		if e.RAMMisses > 0 {
			cells[8] = fmt.Sprintf("%.2f", e.DiskHitFraction())
		}
	}
	if meas.Live != nil {
		// Live fetches are the DB faults the tier failed to absorb.
		cells[7] = fmt.Sprintf("%d", meas.Live.Misses)
	}
	return cells
}
