package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/plane"
	"memqlat/internal/stats"
	"memqlat/internal/workload"
)

// Table3 reproduces the paper's Table 3: the Theorem 1 decomposition vs
// the measured decomposition under the Facebook workload, with 95%
// confidence intervals on the measured means. Both columns are produced
// by planes — the analytical plane and the composition-simulator plane
// judging the same Scenario.
func Table3(b Budget) (*Report, error) {
	start := time.Now()
	model := workload.Facebook()
	est, err := modelRun("facebook", model, b)
	if err != nil {
		return nil, err
	}
	res, err := simRun("facebook", model, b, 0)
	if err != nil {
		return nil, err
	}
	sim := res.Sim
	tsEst := res.TS.Mid()
	tdEst := res.TD
	totalEst := res.Point()
	ciTS := stats.HistMeanCI(sim.TS, 0.95)
	ciTD := stats.HistMeanCI(sim.TD, 0.95)
	ciT := stats.HistMeanCI(sim.Total, 0.95)

	rows := [][]string{
		{"TN(N)", us(est.TN), us(sim.TN), "exact (constant)"},
		{
			"TS(N)",
			fmt.Sprintf("%s ~ %s", us(est.TS.Lo), us(est.TS.Hi)),
			us(tsEst),
			fmt.Sprintf("mean-of-max %s [%s, %s]", us(sim.TS.Mean()), us(ciTS.Lo), us(ciTS.Hi)),
		},
		{
			"TD(N)",
			us(est.TD),
			us(tdEst),
			fmt.Sprintf("mean-of-max %s [%s, %s]", us(sim.TD.Mean()), us(ciTD.Lo), us(ciTD.Hi)),
		},
		{
			"T(N)",
			fmt.Sprintf("%s ~ %s", us(est.Total.Lo), us(est.Total.Hi)),
			us(totalEst),
			fmt.Sprintf("mean-of-max %s [%s, %s]", us(sim.Total.Mean()), us(ciT.Lo), us(ciT.Hi)),
		},
	}
	return &Report{
		ID:      "table3",
		Title:   "Theorem 1 vs experiment, Facebook workload (λ=62.5K ξ=0.15 q=0.1 µS=80K N=150 r=1% µD=1K)",
		Columns: []string{"latency", "Theorem 1", "Experiment (§4.5 estimator)", "mean-of-max (95% CI)"},
		Rows:    rows,
		Notes: []string{
			"paper Table 3: TN 20µs, TS 351~366µs (exp 368µs), TD 836µs (exp 867µs), T 836~1222µs (exp 1144µs)",
			"the mean of per-request maxima exceeds the §4.5 quantile estimator by the " +
				"maximal-statistics (Euler–Mascheroni) bias; both are reported",
			breakdownNote(res),
		},
		Elapsed: time.Since(start),
	}, nil
}

// Fig4 reproduces the paper's Fig. 4: the k-th quantile of per-key
// Memcached-server latency against the eq. 9 bounds.
func Fig4(b Budget) (*Report, error) {
	start := time.Now()
	model := workload.Facebook()
	bq, err := model.ServerQueue(0)
	if err != nil {
		return nil, err
	}
	s := scenarioFor("facebook", model, b, 0)
	s.Requests = 1 // only the per-server streams matter here
	res, err := plane.SimPlane{}.Run(context.Background(), s)
	if err != nil {
		return nil, err
	}
	srv := res.Sim.Servers[0]
	var rows [][]string
	for _, k := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} {
		lo, hi, err := bq.KeyLatencyBounds(k)
		if err != nil {
			return nil, err
		}
		got, err := srv.Quantile(k)
		if err != nil {
			return nil, err
		}
		within := "yes"
		if got < lo*0.9 || got > hi*1.1 {
			within = "NO"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", k), us(lo), us(got), us(hi), within,
		})
	}
	return &Report{
		ID:      "fig4",
		Title:   "per-key TS quantiles vs eq. 9 bounds (Facebook workload)",
		Columns: []string{"k", "lower (TQ)k", "experiment", "upper (TC)k", "within"},
		Rows:    rows,
		Notes: []string{
			"paper Fig. 4 shows the measured curve hugging the bound band up to ~300µs",
			"high quantiles can sit a few percent ABOVE (TC)k: per-key sampling is " +
				"size-biased toward large batches, which eq. 9's batch-stationary derivation ignores",
		},
		Elapsed: time.Since(start),
	}, nil
}
