package experiments

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"memqlat/internal/backend"
	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/dist"
	"memqlat/internal/loadgen"
	"memqlat/internal/queueing"
	"memqlat/internal/server"
)

// liveParams are scaled-down rates the live TCP stack can sustain in
// real time on one machine (the virtual-time simulator covers the
// paper's 62.5 Kps regime).
const (
	livePerServerLambda = 500.0  // keys/s at each server
	liveMuS             = 1000.0 // shaped service rate per server
	liveServers         = 2
	liveXi              = 0.15
	liveQ               = 0.1
	liveOps             = 2000
)

// Live is the end-to-end check that is NOT in the paper: it brings up
// the real TCP memcached cluster with exponential service-time shaping,
// drives it with the mutilate-like generator, and compares the measured
// per-key latency distribution with the GI^X/M/1 prediction at the live
// parameters.
func Live(b Budget) (*Report, error) {
	start := time.Now()
	// --- bring up the cluster ---
	addrs := make([]string, liveServers)
	var servers []*server.Server
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()
	for i := 0; i < liveServers; i++ {
		c, err := cache.New(cache.Options{})
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Options{
			Cache:       c,
			ServiceRate: liveMuS,
			Seed:        b.Seed + uint64(i),
			Logger:      log.New(io.Discard, "", 0),
		})
		if err != nil {
			return nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		servers = append(servers, srv)
		go func() { _ = srv.Serve(l) }()
	}
	db, err := backend.New(backend.Options{MuD: 1000, Seed: b.Seed})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	cl, err := client.New(client.Options{Servers: addrs, Filler: db, PoolSize: 16})
	if err != nil {
		return nil, err
	}
	defer func() { _ = cl.Close() }()

	// --- drive it ---
	opts := loadgen.Options{
		Client:        cl,
		Keys:          2000,
		Lambda:        livePerServerLambda * liveServers,
		Xi:            liveXi,
		Q:             liveQ,
		MissRatio:     0.01,
		Ops:           liveOps,
		Workers:       32,
		Seed:          b.Seed,
		UseGetThrough: true,
	}
	if err := loadgen.Populate(opts); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := loadgen.Run(ctx, opts)
	if err != nil {
		return nil, err
	}

	// --- theory at the live parameters ---
	arr, err := dist.NewGeneralizedPareto(liveXi, (1-liveQ)*livePerServerLambda)
	if err != nil {
		return nil, err
	}
	bq, err := queueing.NewBatchQueue(arr, liveQ, liveMuS)
	if err != nil {
		return nil, err
	}
	meanTheory, err := bq.MeanSojourn()
	if err != nil {
		return nil, err
	}
	p90lo, p90hi, err := bq.KeyLatencyBounds(0.9)
	if err != nil {
		return nil, err
	}

	rows := [][]string{
		{"issued ops", fmt.Sprintf("%d", res.Issued), "-"},
		{"achieved rate", fmt.Sprintf("%.0f keys/s", res.AchievedRate()),
			fmt.Sprintf("target %.0f", opts.Lambda)},
		{"hits/misses/errors", fmt.Sprintf("%d/%d/%d", res.Hits, res.Misses, res.Errors), "-"},
		{"mean latency", ms(res.Latency.Mean()), "GI^X/M/1 mean sojourn " + ms(meanTheory)},
		{"p50 latency", ms(res.Latency.MustQuantile(0.5)), "-"},
		{"p90 latency", ms(res.Latency.MustQuantile(0.9)),
			fmt.Sprintf("eq.9 band [%s, %s]", ms(p90lo), ms(p90hi))},
		{"p99 latency", ms(res.Latency.MustQuantile(0.99)), "-"},
	}
	return &Report{
		ID:      "live",
		Title:   "live TCP stack vs GI^X/M/1 theory (scaled rates: λ=500/s, µS=1K/s per server)",
		Columns: []string{"metric", "live measurement", "theory"},
		Rows:    rows,
		Notes: []string{
			"live latency includes loopback RTT and scheduler jitter on top of the queueing model; " +
				"expect the same order of magnitude, not equality",
		},
		Elapsed: time.Since(start),
	}, nil
}
