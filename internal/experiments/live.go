package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/plane"
	"memqlat/internal/telemetry"
)

// liveParams are scaled-down rates the live TCP stack can sustain in
// real time on one machine (the virtual-time simulator covers the
// paper's 62.5 Kps regime).
const (
	livePerServerLambda = 500.0  // keys/s at each server
	liveMuS             = 1000.0 // shaped service rate per server
	liveServers         = 2
	liveXi              = 0.15
	liveQ               = 0.1
	liveOps             = 2000
)

// Live is the end-to-end check that is NOT in the paper: it runs the
// live-TCP plane — the real memcached cluster with exponential
// service-time shaping, driven by the mutilate-like generator — and
// compares the measured per-key latency distribution (and its
// telemetry breakdown) with the GI^X/M/1 prediction at the live
// parameters.
func Live(b Budget) (*Report, error) {
	start := time.Now()
	s := plane.Scenario{
		Name:         "live",
		N:            1, // the loadgen issues per-key gets
		LoadRatios:   core.BalancedLoad(liveServers),
		TotalKeyRate: livePerServerLambda * liveServers,
		Q:            liveQ,
		Xi:           liveXi,
		MuS:          liveMuS,
		MissRatio:    0.01,
		MuD:          1000,
		Ops:          liveOps,
		Workers:      32,
		Seed:         b.Seed,
	}
	res, err := plane.LivePlane{PoolSize: 16}.Run(context.Background(), s)
	if err != nil {
		return nil, err
	}
	lg := res.Live

	// --- theory at the live parameters ---
	model, err := s.Config()
	if err != nil {
		return nil, err
	}
	bq, err := model.ServerQueue(0)
	if err != nil {
		return nil, err
	}
	meanTheory, err := bq.MeanSojourn()
	if err != nil {
		return nil, err
	}
	p90lo, p90hi, err := bq.KeyLatencyBounds(0.9)
	if err != nil {
		return nil, err
	}

	rows := [][]string{
		{"issued ops", fmt.Sprintf("%d", lg.Issued), "-"},
		{"achieved rate", fmt.Sprintf("%.0f keys/s", lg.AchievedRate()),
			fmt.Sprintf("target %.0f", s.TotalKeyRate)},
		{"hits/misses/errors", fmt.Sprintf("%d/%d/%d", lg.Hits, lg.Misses, lg.Errors), "-"},
		{"mean latency", ms(lg.Latency.Mean()), "GI^X/M/1 mean sojourn " + ms(meanTheory)},
		{"p50 latency", ms(lg.Latency.MustQuantile(0.5)), "-"},
		{"p90 latency", ms(lg.Latency.MustQuantile(0.9)),
			fmt.Sprintf("eq.9 band [%s, %s]", ms(p90lo), ms(p90hi))},
		{"p99 latency", ms(lg.Latency.MustQuantile(0.99)), "-"},
	}
	// Telemetry decomposition of the measured latency: where inside the
	// stack the time went (server queue vs service vs DB vs fork-join
	// spread of concurrently issued batches).
	for _, st := range telemetry.Stages() {
		ss, ok := res.Breakdown[st]
		if !ok || ss.Count == 0 {
			continue
		}
		theory := "-"
		switch st {
		case telemetry.StageService:
			theory = "1/µS " + ms(1/s.MuS)
		case telemetry.StageMissPenalty:
			theory = "1/µD " + ms(1/s.MuD)
		}
		rows = append(rows, []string{
			"stage " + st.String(),
			fmt.Sprintf("mean %s p99 %s (n=%d)", ms(ss.Mean), ms(ss.P99), ss.Count),
			theory,
		})
	}
	return &Report{
		ID:      "live",
		Title:   "live TCP stack vs GI^X/M/1 theory (scaled rates: λ=500/s, µS=1K/s per server)",
		Columns: []string{"metric", "live measurement", "theory"},
		Rows:    rows,
		Notes: []string{
			"live latency includes loopback RTT and scheduler jitter on top of the queueing model; " +
				"expect the same order of magnitude, not equality",
			"stage rows come from the telemetry recorder threaded through server, backend and " +
				"loadgen — the same seam the simulator planes record through",
		},
		Elapsed: time.Since(start),
	}, nil
}
