package experiments

import (
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/workload"
)

// paperTable4 holds the paper's published ρS(ξ) values for side-by-side
// comparison.
var paperTable4 = map[float64]float64{
	0.00: 0.77, 0.05: 0.76, 0.10: 0.76, 0.15: 0.75, 0.20: 0.74,
	0.25: 0.73, 0.30: 0.72, 0.35: 0.71, 0.40: 0.69, 0.45: 0.67,
	0.50: 0.65, 0.55: 0.62, 0.60: 0.59, 0.65: 0.55, 0.70: 0.50,
	0.75: 0.45, 0.80: 0.39, 0.85: 0.31, 0.90: 0.21, 0.95: 0.09,
}

// Table4 reproduces the paper's Table 4: the utilization cliff ρS(ξ) for
// each burst degree, via both detectors (DESIGN.md §4.2).
func Table4(Budget) (*Report, error) {
	start := time.Now()
	xis := core.PaperTable4Xis()
	deltaRows, err := core.CliffTable(xis, workload.FacebookQ,
		&core.CliffOptions{Method: core.CliffDeltaThreshold})
	if err != nil {
		return nil, err
	}
	slopeRows, err := core.CliffTable(xis, workload.FacebookQ,
		&core.CliffOptions{Method: core.CliffSlope})
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for i, xi := range xis {
		paper := "-"
		if v, ok := paperTable4[xi]; ok {
			paper = pct(v)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", xi),
			pct(deltaRows[i].Utilization),
			pct(slopeRows[i].Utilization),
			paper,
		})
	}
	return &Report{
		ID:      "table4",
		Title:   "cliff utilization ρS(ξ) (q=0.1)",
		Columns: []string{"ξ", "δ-threshold", "slope", "paper"},
		Rows:    rows,
		Notes: []string{
			"both detectors are calibrated at ξ=0 → 77% (paper's anchor); " +
				"Proposition 2 guarantees the value depends only on ξ",
			"the slope detector saturates to ~0% for ξ ≥ 0.8: with such heavy tails the " +
				"relative latency sensitivity exceeds the calibrated threshold at every " +
				"utilization — the curve is 'all cliff'",
		},
		Elapsed: time.Since(start),
	}, nil
}
