package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/fault"
	"memqlat/internal/plane"
	"memqlat/internal/telemetry"
	"memqlat/internal/workload"
)

// resilienceFaults is the schedule the policy sweep runs under: a hard
// 20%-drop fault on server 0 with a 5ms timeout stand-in — heavy enough
// that every policy has something to recover, light enough that the
// healthy three quarters of the fleet keeps the composition meaningful.
const resilienceFaults = "drop:srv=0,p=0.2,delay=5ms"

// ExtResilience sweeps the recovery policies one at a time (and
// combined) over the same faulted scenario on the composition
// simulator: what does each policy buy — in failed keys, degraded
// requests, shed load and latency — under the identical deterministic
// fault sequence? This is the fault-injection analogue of the paper's
// factor sweeps: the factor is the recovery policy, everything else is
// pinned.
func ExtResilience(b Budget) (*Report, error) {
	start := time.Now()
	model := workload.Facebook()
	faults, err := fault.ParseSchedule(resilienceFaults)
	if err != nil {
		return nil, err
	}
	retry := fault.Resilience{Retries: 2, RetryBackoff: 100e-6}
	hedge := fault.Resilience{HedgeDelay: 2e-3}
	breaker := fault.Resilience{BreakerThreshold: 0.5, BreakerWindow: 20, BreakerCooldown: 0.02}
	all := fault.Resilience{
		Retries: 2, RetryBackoff: 100e-6,
		HedgeDelay:       2e-3,
		BreakerThreshold: 0.5, BreakerWindow: 20, BreakerCooldown: 0.02,
	}
	policies := []struct {
		label string
		spec  fault.Resilience
	}{
		{"none", fault.Resilience{}},
		{"retry", retry},
		{"hedge", hedge},
		{"breaker", breaker},
		{"retry+hedge+breaker", all},
	}
	var rows [][]string
	for _, pol := range policies {
		s := scenarioFor("facebook", model, b, 0)
		s.Faults = faults
		s.Resilience = pol.spec
		res, err := plane.SimPlane{}.Run(context.Background(), s)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", pol.label, err)
		}
		p99, err := res.Sample.Quantile(0.99)
		if err != nil {
			return nil, err
		}
		sim := res.Sim
		failedPct := float64(sim.FailedKeys) / float64(sim.KeyCount)
		degradedPct := float64(sim.DegradedRequests) / float64(sim.Requests)
		rows = append(rows, []string{
			pol.label,
			lat(res.Sample.Mean()),
			lat(p99),
			fmt.Sprintf("%d (%s)", sim.FailedKeys, pct(failedPct)),
			fmt.Sprintf("%d", sim.ShedKeys),
			fmt.Sprintf("%d (%s)", sim.DegradedRequests, pct(degradedPct)),
			lat(res.Breakdown.MeanOf(telemetry.StageRetry)),
			lat(res.Breakdown.MeanOf(telemetry.StageHedgeWait)),
		})
	}
	return &Report{
		ID:    "ext-resilience",
		Title: "Extension: recovery-policy sweep under the fault schedule " + resilienceFaults,
		Columns: []string{"policy", "E[T(N)]", "p99", "failed keys", "shed keys",
			"degraded reqs", "retry", "hedge_wait"},
		Rows: rows,
		Notes: []string{
			"all rows share one deterministic fault sequence (same schedule seed), so " +
				"differences are the policy's doing, not sampling noise",
			"retries and hedges re-draw the faulted server's latency distribution, so " +
				"each masks ~p of the p-probability drops per extra attempt",
			"the breaker trades availability for latency: shed keys fail fast instead " +
				"of eating the 5ms timeout stand-in",
			"the live client interprets the same policy knobs (client.ResilienceFromSpec); " +
				"mcbench -faults runs this sweep's schedule against the real TCP stack",
		},
		Elapsed: time.Since(start),
	}, nil
}
