package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/plane"
	"memqlat/internal/sim"
	"memqlat/internal/workload"
)

// tsPoint runs one sweep point through two planes: the analytical
// plane's Theorem 1 prediction plus the simulator plane's §4.5
// estimate of E[TS(N)].
func tsPoint(model *core.Config, b Budget, seedOffset uint64) (theory, measured float64, err error) {
	mres, err := modelRun("sweep", model, b)
	if err != nil {
		return 0, 0, err
	}
	sres, err := simRun("sweep", model, b, seedOffset)
	if err != nil {
		return 0, 0, err
	}
	return mres.TS.Hi, sres.TS.Mid(), nil
}

// Fig5 sweeps the concurrent probability q from 0 to 0.5 (paper Fig. 5).
func Fig5(b Budget) (*Report, error) {
	start := time.Now()
	var rows [][]string
	for i, q := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		model := workload.WithQ(q)
		theory, measured, err := tsPoint(model, b, uint64(i))
		if err != nil {
			return nil, fmt.Errorf("q=%v: %w", q, err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", q), us(theory), us(measured),
		})
	}
	return &Report{
		ID:      "fig5",
		Title:   "E[TS(N)] vs concurrent probability q (λ=62.5K fixed)",
		Columns: []string{"q", "Theorem 1", "Experiment"},
		Rows:    rows,
		Notes: []string{
			"paper Fig. 5: ~350µs at q=0 rising to ~650µs at q=0.5 — E[TS(N)] = Θ(1/(1-q))",
		},
		Elapsed: time.Since(start),
	}, nil
}

// Fig6 sweeps the burst degree ξ from 0 to 0.6 (paper Fig. 6).
func Fig6(b Budget) (*Report, error) {
	start := time.Now()
	var rows [][]string
	for i, xi := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		model := workload.WithXi(xi)
		theory, measured, err := tsPoint(model, b, 100+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("xi=%v: %w", xi, err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", xi), us(theory), us(measured),
		})
	}
	return &Report{
		ID:      "fig6",
		Title:   "E[TS(N)] vs burst degree ξ",
		Columns: []string{"ξ", "Theorem 1", "Experiment"},
		Rows:    rows,
		Notes: []string{
			"paper Fig. 6: latency grows from ~300µs (Poisson) past 1.2ms at ξ=0.6",
		},
		Elapsed: time.Since(start),
	}, nil
}

// Fig7 sweeps the per-server arrival rate λ (paper Fig. 7) and reports
// the knee the paper calls the latency cliff.
func Fig7(b Budget) (*Report, error) {
	start := time.Now()
	var rows [][]string
	for i, lam := range []float64{10000, 20000, 30000, 40000, 50000, 55000, 60000, 65000, 70000, 75000} {
		model := workload.WithLambda(lam)
		theory, measured, err := tsPoint(model, b, 200+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("lambda=%v: %w", lam, err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0fK", lam/1000),
			pct(lam / workload.FacebookMuS),
			us(theory), us(measured),
		})
	}
	cliff, err := core.CliffUtilization(workload.FacebookXi, workload.FacebookQ, nil)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:      "fig7",
		Title:   "E[TS(N)] vs per-server arrival rate λ (µS=80K)",
		Columns: []string{"λ", "ρS", "Theorem 1", "Experiment"},
		Rows:    rows,
		Notes: []string{
			fmt.Sprintf("detected cliff utilization for ξ=0.15: %s (paper: ~75%%, λ≈60K)", pct(cliff)),
			"paper Fig. 7: gentle growth below 50K, sharp past 60K",
		},
		Elapsed: time.Since(start),
	}, nil
}

// theoryCurveByXi renders a theory-only λ or µS sweep for several burst
// degrees (papers Figs. 8 and 9).
func theoryCurveByXi(id, title, varName string, values []float64,
	makeModel func(xi, v float64) *core.Config, paperNote string) (*Report, error) {
	start := time.Now()
	xis := []float64{0, 0.6, 0.8}
	columns := []string{varName}
	for _, xi := range xis {
		columns = append(columns, fmt.Sprintf("ξ=%.1f", xi))
	}
	var rows [][]string
	for _, v := range values {
		row := []string{fmt.Sprintf("%.0fK", v/1000)}
		for _, xi := range xis {
			model := makeModel(xi, v)
			ts, err := model.ExpectedTSPoint()
			if err != nil {
				row = append(row, "unstable")
				continue
			}
			row = append(row, us(ts))
		}
		rows = append(rows, row)
	}
	return &Report{
		ID:      id,
		Title:   title,
		Columns: columns,
		Rows:    rows,
		Notes:   []string{paperNote},
		Elapsed: time.Since(start),
	}, nil
}

// Fig8 is the theory-only λ sweep for ξ ∈ {0, 0.6, 0.8} (paper Fig. 8).
func Fig8(Budget) (*Report, error) {
	return theoryCurveByXi("fig8",
		"Theory: E[TS(N)] vs λ for three burst degrees (µS=80K)", "λ",
		[]float64{10000, 20000, 30000, 40000, 45000, 50000, 55000, 60000, 65000, 70000, 75000},
		func(xi, lam float64) *core.Config {
			m := workload.WithLambda(lam)
			m.Xi = xi
			return m
		},
		"paper Fig. 8: cliffs at λ≈65K (ξ=0), 45K (ξ=0.6), 30K (ξ=0.8) — i.e. ρS 80%/55%/40%")
}

// Fig9 is the theory-only µS sweep for ξ ∈ {0, 0.6, 0.8} (paper Fig. 9).
func Fig9(Budget) (*Report, error) {
	return theoryCurveByXi("fig9",
		"Theory: E[TS(N)] vs µS for three burst degrees (λ=62.5K)", "µS",
		[]float64{65000, 70000, 80000, 90000, 100000, 110000, 120000, 140000, 160000, 180000, 200000},
		func(xi, muS float64) *core.Config {
			m := workload.WithMuS(muS)
			m.Xi = xi
			return m
		},
		"paper Fig. 9: cliffs at µS≈85K (ξ=0), 110K (ξ=0.6), 160K (ξ=0.8) — same ρS as Fig. 8")
}

// Fig10 sweeps the largest load ratio p1 at a fixed aggregate stream
// Λ=80K (paper Fig. 10).
func Fig10(b Budget) (*Report, error) {
	start := time.Now()
	var rows [][]string
	for i, p1 := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9} {
		model, err := workload.WithImbalance(p1, 80000)
		if err != nil {
			return nil, err
		}
		theory, measured, err := tsPoint(model, b, 300+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("p1=%v: %w", p1, err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p1),
			pct(p1 * 80000 / workload.FacebookMuS),
			us(theory), us(measured),
		})
	}
	return &Report{
		ID:      "fig10",
		Title:   "E[TS(N)] vs largest load ratio p1 (Λ=80K, ξ=0.15, µS=80K)",
		Columns: []string{"p1", "max ρS", "Theorem 1", "Experiment"},
		Rows:    rows,
		Notes: []string{
			"paper Fig. 10: cliff at p1=0.75 (heaviest server 60K keys/s, ρS=75%) — " +
				"load balancing only matters past the cliff",
		},
		Elapsed: time.Since(start),
	}, nil
}

// Fig11 sweeps the cache miss ratio for small and large N (paper
// Fig. 11, both panels).
func Fig11(b Budget) (*Report, error) {
	start := time.Now()
	ns := []int{1, 4, 10, 100, 1000, 10000}
	ratios := []float64{1e-4, 1e-3, 1e-2, 2e-2, 5e-2, 1e-1}
	columns := []string{"r"}
	for _, n := range ns {
		columns = append(columns, fmt.Sprintf("N=%d thr", n), fmt.Sprintf("N=%d exp", n))
	}
	var rows [][]string
	for _, r := range ratios {
		row := []string{fmt.Sprintf("%g", r)}
		for _, n := range ns {
			model := workload.WithMissRatio(r, n)
			td, err := model.ExpectedTD()
			if err != nil {
				return nil, err
			}
			res, err := sim.SimulateMissStage(sim.MissStageConfig{
				N: n, MissRatio: r, MuD: model.MuD,
				Requests: b.Requests * 5, Seed: b.Seed,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, lat(td), lat(res.TDQuantileEstimate(model.MuD)))
		}
		rows = append(rows, row)
	}
	return &Report{
		ID:      "fig11",
		Title:   "E[TD(N)] vs cache miss ratio r (µD=1K)",
		Columns: columns,
		Rows:    rows,
		Notes: []string{
			"paper Fig. 11: Θ(r) growth for small N (left panel), Θ(log r) for large N (right panel)",
		},
		Elapsed: time.Since(start),
	}, nil
}

// Fig12 sweeps keys-per-request N for the server stage (paper Fig. 12).
func Fig12(b Budget) (*Report, error) {
	start := time.Now()
	var rows [][]string
	for i, n := range []int{1, 10, 100, 1000, 10000} {
		model := workload.WithN(n)
		model.MissRatio = 0 // isolate TS
		reqs := b.Requests
		if n >= 1000 {
			reqs = b.Requests / 10
			if reqs < 200 {
				reqs = 200
			}
		}
		mres, err := modelRun("fig12", model, b)
		if err != nil {
			return nil, err
		}
		s := scenarioFor("fig12", model, b, 400+uint64(i))
		s.Requests = reqs
		sres, err := plane.SimPlane{}.Run(context.Background(), s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), us(mres.TS.Hi), us(sres.TS.Mid()),
		})
	}
	return &Report{
		ID:      "fig12",
		Title:   "E[TS(N)] vs keys per request N (Facebook workload, Θ(log N))",
		Columns: []string{"N", "Theorem 1", "Experiment"},
		Rows:    rows,
		Notes:   []string{"paper Fig. 12: ~75µs at N=1 growing logarithmically to ~650µs at N=10⁴"},
		Elapsed: time.Since(start),
	}, nil
}

// Fig13 sweeps keys-per-request N for the database stage (paper
// Fig. 13).
func Fig13(b Budget) (*Report, error) {
	start := time.Now()
	var rows [][]string
	for _, n := range []int{1, 10, 100, 1000, 10000, 100000, 1000000} {
		model := workload.WithN(n)
		td, err := model.ExpectedTD()
		if err != nil {
			return nil, err
		}
		res, err := sim.SimulateMissStage(sim.MissStageConfig{
			N: n, MissRatio: model.MissRatio, MuD: model.MuD,
			Requests: b.Requests * 5, Seed: b.Seed + 500,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), lat(td), lat(res.TDQuantileEstimate(model.MuD)),
		})
	}
	return &Report{
		ID:      "fig13",
		Title:   "E[TD(N)] vs keys per request N (r=1%, µD=1K, Θ(log N))",
		Columns: []string{"N", "Theorem 1", "Experiment"},
		Rows:    rows,
		Notes:   []string{"paper Fig. 13: sub-ms for N≤10², ~2.3ms at 10⁴, ~9.2ms at 10⁶"},
		Elapsed: time.Since(start),
	}, nil
}
