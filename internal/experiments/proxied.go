package experiments

import (
	"context"
	"fmt"
	"time"

	"memqlat/internal/core"
	"memqlat/internal/plane"
	"memqlat/internal/telemetry"
	"memqlat/internal/workload"
)

// Proxied is the proxy-tier experiment (NOT in the paper): it prices an
// mcrouter-style proxy interposed between clients and the memcached
// fleet on every plane. The model adds one more GI^X/M/1 fork-join
// stage in series (Theorem 1 composes additively); the composition
// simulator threads every key through a proxy stream in virtual time;
// the live plane runs a real TCP proxy (internal/proxy) in front of
// real servers. Rows sweep the arrival rate for direct vs proxied vs
// replicated routing, then close with the scaled live measurement.
func Proxied(b Budget) (*Report, error) {
	start := time.Now()
	ctx := context.Background()
	var rows [][]string

	// --- model + simulator sweep over load ---
	for _, mult := range []float64{0.5, 0.75, 1.0} {
		s := plane.FromConfig(fmt.Sprintf("λ×%.2f", mult),
			workload.WithLambda(workload.FacebookLambda*mult))
		s.Requests = b.Requests
		s.KeysPerServer = b.KeysPerServer
		s.Seed = b.Seed

		proxied := s
		proxied.Proxy = &plane.ProxySpec{}
		repl := s
		repl.Proxy = &plane.ProxySpec{Policy: "replicate", Replicas: 2}

		mdir, err := (plane.ModelPlane{}).Run(ctx, s)
		if err != nil {
			return nil, err
		}
		mpx, err := (plane.ModelPlane{}).Run(ctx, proxied)
		if err != nil {
			return nil, err
		}
		sdir, err := (plane.SimPlane{}).Run(ctx, s)
		if err != nil {
			return nil, err
		}
		spx, err := (plane.SimPlane{}).Run(ctx, proxied)
		if err != nil {
			return nil, err
		}
		hop := spx.Breakdown.MeanOf(telemetry.StageProxyHop)
		rows = append(rows,
			[]string{s.Name, "direct", lat(mdir.Point()), lat(sdir.Point()), "-"},
			[]string{s.Name, "proxied", lat(mpx.Point()), lat(spx.Point()), lat(hop)},
		)
		// Replicated reads double the per-server key rate; past the
		// stability boundary the queue diverges, which the row records
		// instead of a latency.
		model, err := s.Config()
		if err != nil {
			return nil, err
		}
		if 2*model.ServerKeyRate(0) >= model.MuS {
			rows = append(rows, []string{s.Name, "replicated r=2", "-", "unstable (2λ ≥ µS)", "-"})
			continue
		}
		srp, err := (plane.SimPlane{}).Run(ctx, repl)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{s.Name, "replicated r=2", "-", lat(srp.Point()),
			lat(srp.Breakdown.MeanOf(telemetry.StageProxyHop))})
	}

	// --- live: real proxy in front of real servers at scaled rates ---
	live := plane.Scenario{
		Name:         "live",
		N:            1,
		LoadRatios:   core.BalancedLoad(liveServers),
		TotalKeyRate: livePerServerLambda * liveServers,
		Q:            liveQ,
		Xi:           liveXi,
		MuS:          liveMuS,
		MissRatio:    0.01,
		MuD:          1000,
		Ops:          liveOps,
		Workers:      32,
		Seed:         b.Seed,
	}
	ldir, err := (plane.LivePlane{PoolSize: 16}).Run(ctx, live)
	if err != nil {
		return nil, err
	}
	liveProxied := live
	liveProxied.Proxy = &plane.ProxySpec{}
	lpx, err := (plane.LivePlane{PoolSize: 16}).Run(ctx, liveProxied)
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		[]string{"live λ=1K/s", "direct", "-", lat(ldir.Point()), "-"},
		[]string{"live λ=1K/s", "proxied", "-", lat(lpx.Point()),
			lat(lpx.Breakdown.MeanOf(telemetry.StageProxyHop))},
	)

	return &Report{
		ID:      "proxied",
		Title:   "Proxy tier: direct vs proxied vs replicated routing on every plane",
		Columns: []string{"load", "routing", "model E[T(N)]", "measured E[T(N)]", "proxy hop mean"},
		Rows:    rows,
		Notes: []string{
			"the model prices the proxy as one more GI^X/M/1 fork-join stage in series at rate µP = M·µS; " +
				"replicated routing is simulator/live-only (routing does not change the model's queueing structure)",
			"replicated r=2 charges the duplicated reads to the servers, so it trades server load for tail hedging",
			"live proxy hop is the forward-path cost (parse + route + upstream enqueue) measured inside the proxy; " +
				"live totals additionally pay one extra loopback RTT per key",
		},
		Elapsed: time.Since(start),
	}, nil
}
