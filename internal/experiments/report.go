// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5): each runner sweeps the configured factor,
// evaluates each point on the evaluation planes (internal/plane) — the
// analytical plane for the Theorem 1 prediction, the simulator plane
// for the "Experiment" measurement (the paper's §4.5 estimators), the
// live TCP plane for the end-to-end check — and renders rows in the
// units the paper reports.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier (e.g. "table3", "fig7").
	ID string
	// Title describes what the paper artifact shows.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, pre-formatted.
	Rows [][]string
	// Notes carry paper reference values and caveats.
	Notes []string
	// Elapsed is the runner's wall time.
	Elapsed time.Duration
}

// CSV renders the report as RFC-4180 CSV (header + rows), the input a
// plotting tool needs to regenerate the paper's figures graphically.
func (r *Report) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, r.Columns)
	for _, row := range r.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// Render formats the report as an aligned text table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s (ran in %v)\n", r.ID, r.Title, r.Elapsed.Round(time.Millisecond))
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Budget scales the measurement effort of every runner.
type Budget struct {
	// Requests is the per-point fork-join sample size.
	Requests int
	// KeysPerServer is the per-server key-stream sample size.
	KeysPerServer int
	// Seed roots all randomness.
	Seed uint64
}

// Quick is sized for CI (seconds per experiment).
var Quick = Budget{Requests: 4000, KeysPerServer: 120000, Seed: 1}

// Full approaches the paper's 10-minute testbed runs.
var Full = Budget{Requests: 40000, KeysPerServer: 1000000, Seed: 1}

// us renders a seconds quantity in microseconds like the paper's tables.
func us(seconds float64) string {
	return fmt.Sprintf("%.0fµs", seconds*1e6)
}

// ms renders a seconds quantity in milliseconds.
func ms(seconds float64) string {
	return fmt.Sprintf("%.3fms", seconds*1e3)
}

// lat renders a latency adaptively (ns/µs/ms) with three significant
// digits so that sweeps spanning decades stay readable and parseable.
func lat(seconds float64) string {
	switch {
	case seconds == 0:
		return "0µs"
	case seconds < 1e-6:
		return fmt.Sprintf("%.3gns", seconds*1e9)
	case seconds < 1e-3:
		return fmt.Sprintf("%.3gµs", seconds*1e6)
	default:
		return fmt.Sprintf("%.3gms", seconds*1e3)
	}
}

// pct renders a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Budget) (*Report, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table3", "Basic validation under the Facebook workload", Table3},
		{"fig4", "k-th quantile of per-key server latency vs eq. 9 bounds", Fig4},
		{"fig5", "E[TS(N)] vs concurrent probability q", Fig5},
		{"fig6", "E[TS(N)] vs burst degree ξ", Fig6},
		{"fig7", "E[TS(N)] vs arrival rate λ (latency cliff)", Fig7},
		{"fig8", "Theory: E[TS(N)] vs λ for ξ∈{0,0.6,0.8}", Fig8},
		{"fig9", "Theory: E[TS(N)] vs µS for ξ∈{0,0.6,0.8}", Fig9},
		{"fig10", "E[TS(N)] vs largest load ratio p1", Fig10},
		{"fig11", "E[TD(N)] vs cache miss ratio r", Fig11},
		{"fig12", "E[TS(N)] vs keys per request N", Fig12},
		{"fig13", "E[TD(N)] vs keys per request N", Fig13},
		{"table4", "Cliff utilization ρS(ξ)", Table4},
		{"prop1", "Proposition 1 bound check on random load splits", Prop1},
		{"prop2", "Proposition 2 scale invariance", Prop2},
		{"ext-tails", "Extension: tail quantiles of TS(N)/TD(N)", ExtTails},
		{"ext-arrivals", "Extension: arrival-family ablation at fixed ρS", ExtArrivals},
		{"ext-eq6", "Extension: eq. 6 (1−q) factor ablation", ExtEq6Ablation},
		{"ext-redundancy", "Extension: hedged reads inside the model", ExtRedundancy},
		{"ext-integrated", "Extension: independence-assumption ablation", ExtIntegrated},
		{"ext-elasticity", "Extension: factor elasticities (the §1 question)", ExtElasticity},
		{"ext-resilience", "Extension: recovery policies under fault injection", ExtResilience},
		{"crossplane", "One scenario through every deterministic plane", CrossPlane},
		{"hotkey", "Hot-key herd: naive vs coalesced miss path on every plane", HotKey},
		{"noisy", "Noisy neighbor: token-bucket QoS sheds an over-quota aggressor on every plane", Noisy},
		{"proxied", "Proxy tier: direct vs proxied vs replicated on every plane", Proxied},
		{"tiered", "Tiered storage: RAM:SSD splits at fixed cost via the shared MRC", Tiered},
		{"live", "Live TCP stack end-to-end check", Live},
		{"drift", "SLO watchdog: injected-fault detection latency across planes", Drift},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var known []string
	for _, e := range All() {
		known = append(known, e.ID)
	}
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %s)",
		id, strings.Join(known, ", "))
}
