package loadgen

import (
	"context"
	"io"
	"log"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"memqlat/internal/backend"
	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/server"
)

// startStack brings up servers + client (+ optional backend filler).
func startStack(t *testing.T, n int, withFiller bool) *client.Client {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		c, err := cache.New(cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Options{Cache: c, Logger: log.New(io.Discard, "", 0)})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(l)
		}()
		t.Cleanup(func() {
			_ = srv.Close()
			<-done
		})
	}
	opts := client.Options{Servers: addrs}
	if withFiller {
		db, err := backend.New(backend.Options{MuD: 1e5})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(db.Close)
		opts.Filler = db
	}
	cl, err := client.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Error("nil client accepted")
	}
	cl := startStack(t, 1, false)
	bad := []Options{
		{Client: cl, Keys: -1},
		{Client: cl, ValueSize: -1},
		{Client: cl, ZipfS: -1},
		{Client: cl, Lambda: -5},
		{Client: cl, Xi: 1},
		{Client: cl, Q: -0.1},
		{Client: cl, MissRatio: 2},
		{Client: cl, Ops: -1},
		{Client: cl, Workers: -1},
		{Client: cl, ValueDist: "pareto"},
		{Client: cl, ValueDist: ValueDistLogNormal, ValueSigma: -1},
	}
	for i, o := range bad {
		if _, err := Run(context.Background(), o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPopulateValueDist(t *testing.T) {
	cl := startStack(t, 1, false)
	opts := Options{
		Client: cl, Keys: 300, ValueSize: 100, Seed: 3,
		ValueDist: ValueDistLogNormal,
	}
	if err := Populate(opts); err != nil {
		t.Fatal(err)
	}
	minLen, maxLen, sum := 1<<30, 0, 0
	for i := 0; i < opts.Keys; i++ {
		v, err := cl.Get("mq:" + strconv.Itoa(i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		n := len(v.Value)
		if n < 1 || n > 8*opts.ValueSize {
			t.Fatalf("key %d has size %d outside [1, %d]", i, n, 8*opts.ValueSize)
		}
		sum += n
		minLen = min(minLen, n)
		maxLen = max(maxLen, n)
	}
	if minLen == maxLen {
		t.Errorf("lognormal sizes did not vary (all %d bytes)", minLen)
	}
	if mean := float64(sum) / float64(opts.Keys); mean < 70 || mean > 130 {
		t.Errorf("mean size %.1f far from the configured mean 100", mean)
	}
	// The size law is a pure function of (Seed, key index).
	o, err := opts.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := valueSizes(o)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := valueSizes(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("size draw %d not deterministic: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPopulateAndRunAllHits(t *testing.T) {
	cl := startStack(t, 2, false)
	opts := Options{
		Client: cl, Keys: 200, Ops: 1000, Lambda: 50000, Workers: 8, Seed: 1,
	}
	if err := Populate(opts); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 1000 {
		t.Errorf("issued = %d", res.Issued)
	}
	if res.Misses != 0 || res.Errors != 0 {
		t.Errorf("misses=%d errors=%d", res.Misses, res.Errors)
	}
	if res.Hits != 1000 {
		t.Errorf("hits = %d", res.Hits)
	}
	if res.Latency.Count() != 1000 {
		t.Errorf("latency samples = %d", res.Latency.Count())
	}
	if res.Latency.Mean() <= 0 {
		t.Error("zero latency recorded")
	}
	if res.AchievedRate() <= 0 {
		t.Error("zero achieved rate")
	}
}

func TestRunForcedMisses(t *testing.T) {
	cl := startStack(t, 1, false)
	opts := Options{
		Client: cl, Keys: 100, Ops: 500, Lambda: 50000, Workers: 8,
		MissRatio: 0.5, Seed: 2,
	}
	if err := Populate(opts); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Misses) / float64(res.Issued)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("miss fraction = %v, want ~0.5", frac)
	}
}

func TestRunGetThroughFillsBackend(t *testing.T) {
	cl := startStack(t, 1, true)
	opts := Options{
		Client: cl, Keys: 50, Ops: 300, Lambda: 20000, Workers: 4,
		MissRatio: 0.3, UseGetThrough: true, Seed: 3,
	}
	if err := Populate(opts); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	// With GetThrough the forced-miss keys get filled, so a miss shows
	// up once and later reads of the same key hit.
	if res.Misses == 0 {
		t.Error("no misses despite MissRatio")
	}
	if res.Hits == 0 {
		t.Error("no hits")
	}
}

func TestRunContextCancel(t *testing.T) {
	cl := startStack(t, 1, false)
	opts := Options{Client: cl, Keys: 10, Ops: 1000000, Lambda: 10, Workers: 2, Seed: 4}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued >= 1000000 {
		t.Error("cancel did not stop the run")
	}
}

func TestRunZipfSkew(t *testing.T) {
	cl := startStack(t, 4, false)
	opts := Options{
		Client: cl, Keys: 1000, Ops: 2000, Lambda: 100000, Workers: 8,
		ZipfS: 1.2, Seed: 5,
	}
	if err := Populate(opts); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != int64(opts.Ops) {
		t.Errorf("hits = %d / %d (errors %d, misses %d)",
			res.Hits, opts.Ops, res.Errors, res.Misses)
	}
	// Skewed popularity concentrates load: the hottest server should
	// have served noticeably more gets than the coldest.
	var maxGets, minGets int64 = -1, 1 << 60
	for i := 0; i < 4; i++ {
		st, err := cl.ServerStats(i)
		if err != nil {
			t.Fatal(err)
		}
		gets, err := strconv.ParseInt(st["cmd_get"], 10, 64)
		if err != nil {
			t.Fatalf("cmd_get = %q", st["cmd_get"])
		}
		if gets > maxGets {
			maxGets = gets
		}
		if gets < minGets {
			minGets = gets
		}
	}
	if maxGets <= minGets {
		t.Errorf("no skew: max=%d min=%d", maxGets, minGets)
	}
}

func TestClosedLoopMode(t *testing.T) {
	cl := startStack(t, 2, false)
	opts := Options{
		Client: cl, Keys: 100, Ops: 400, Lambda: 100000, Workers: 8,
		ClosedLoop: true, Seed: 9,
	}
	if err := Populate(opts); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 400 {
		t.Errorf("issued = %d", res.Issued)
	}
	if res.Hits != 400 || res.Errors != 0 {
		t.Errorf("hits=%d errors=%d", res.Hits, res.Errors)
	}
	if res.Latency.Count() != 400 {
		t.Errorf("latency samples = %d", res.Latency.Count())
	}
}

func TestClosedLoopContextCancel(t *testing.T) {
	cl := startStack(t, 1, false)
	opts := Options{
		Client: cl, Keys: 10, Ops: 1000000, Lambda: 5, Workers: 2,
		ClosedLoop: true, Seed: 10,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued >= 1000000 {
		t.Error("cancel ignored")
	}
}

func TestClosedLoopObserver(t *testing.T) {
	cl := startStack(t, 1, false)
	var mu sync.Mutex
	var observed []string
	opts := Options{
		Client: cl, Keys: 20, Ops: 100, Lambda: 100000, Workers: 4,
		ClosedLoop: true, Seed: 11,
		Observer: func(_ time.Duration, key string) {
			// Called under the run's mutex; safe to append directly, but
			// the local mutex guards against doc drift.
			mu.Lock()
			observed = append(observed, key)
			mu.Unlock()
		},
	}
	if err := Populate(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 100 {
		t.Errorf("observed %d keys", len(observed))
	}
}
