// Package loadgen is the mutilate-like workload driver for the live TCP
// stack (the paper uses mutilate, §5.1): it generates an open-loop key
// stream with Generalized Pareto inter-arrival gaps (burst degree ξ),
// geometric batch concurrency (probability q), and Zipf key popularity,
// issues the gets through the client, and records per-key latency.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"memqlat/internal/client"
	"memqlat/internal/dist"
	"memqlat/internal/protocol"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
	"memqlat/internal/tenant"
)

// Value-size laws for Options.ValueDist.
const (
	ValueDistFixed     = "fixed"
	ValueDistLogNormal = "lognormal"
)

// Options configures a run.
type Options struct {
	// Client issues the operations (required).
	Client *client.Client
	// Keys is the keyspace size (default 10_000).
	Keys int
	// KeyPrefix namespaces the keyspace (default "mq:").
	KeyPrefix string
	// ValueSize is the stored value size in bytes (default 100). Under
	// ValueDistLogNormal it is the mean of the size law instead.
	ValueSize int
	// ValueDist selects the per-key value-size law for Populate:
	// ValueDistFixed (the default) stores ValueSize bytes for every
	// key; ValueDistLogNormal draws each key's size from a lognormal
	// with mean ValueSize and shape ValueSigma, clamped to
	// [1, 8·ValueSize] — mixed object sizes as a disk tier would see
	// them. Sizes are a deterministic function of (Seed, key index).
	ValueDist string
	// ValueSigma is the lognormal shape parameter for
	// ValueDistLogNormal (default 0.5).
	ValueSigma float64
	// ZipfS skews key popularity (0 = uniform; the Facebook trace is
	// heavily skewed, ~1).
	ZipfS float64
	// Lambda is the target aggregate key rate per second (default 2000;
	// real-time sleeping cannot sustain the paper's 62.5 Kps per server
	// on one box — the virtual-time simulator covers that regime).
	Lambda float64
	// Xi is the burst degree of batch inter-arrival gaps.
	Xi float64
	// Q is the concurrent probability (geometric batch sizes).
	Q float64
	// MissRatio is the fraction of gets aimed at keys that were never
	// stored, forcing cache misses (relayed to the Filler if the client
	// has one).
	MissRatio float64
	// Ops is the number of key operations to issue (default 10_000).
	Ops int
	// Workers bounds in-flight operations (default 32).
	Workers int
	// Seed makes the key/gap streams deterministic.
	Seed uint64
	// UseGetThrough routes reads through Client.GetThrough so that
	// misses hit the backend (requires a Filler on the client).
	UseGetThrough bool
	// Observer, when set, is called from the pacer goroutine for every
	// issued key with its offset from run start — e.g. a trace.Writer
	// journaling the stream for later MRC analysis or replay.
	Observer func(offset time.Duration, key string)
	// ClosedLoop switches from open-loop pacing (arrivals at the target
	// rate regardless of completions — the paper's/mutilate's model) to
	// closed-loop: Workers outstanding requests, each issued as soon as
	// the previous completes, with an exponential think time of mean
	// 1/Lambda·Workers between a worker's operations. Closed loops
	// cannot observe queueing collapse (coordinated omission), which is
	// exactly why the paper's methodology is open-loop — this mode
	// exists to demonstrate the difference.
	ClosedLoop bool
	// Recorder, when set, receives a StageForkJoin observation per
	// issued batch: the spread (max − mean completion latency) over the
	// batch's concurrently-issued keys — the live analogue of the
	// fork-join join overhead. Open-loop mode only (closed loops have
	// no batches).
	Recorder telemetry.Recorder
	// OnLatency, when set, receives every per-key end-to-end latency
	// (seconds) that lands in the Latency histogram — tenant-shed
	// refusals excluded, same as the histogram. It is called from
	// worker goroutines and must be safe for concurrent use; the SLO
	// watchdog's burn-rate accounting hangs off this hook.
	OnLatency func(seconds float64)
	// Tenants, when non-empty, draws a tenant per issued key from the
	// Share mix (rng stream 15) and prefixes the key with "<name>:" so
	// a QoS-armed proxy meters it against that tenant's bucket.
	// Populate stores every tenant's keyspace. A reply matching
	// tenant.ShedMsg counts as a tenant shed — in Issued but in none
	// of Hits/Misses/Errors, and excluded from every latency histogram
	// (an admission refusal is not a service latency).
	Tenants []tenant.Spec
}

// Result summarizes a run.
type Result struct {
	// Latency is the per-key end-to-end latency histogram.
	Latency *stats.Histogram
	// Hits / Misses / Errors count operation outcomes.
	Hits   int64
	Misses int64
	Errors int64
	// Shed counts the Errors that were breaker fast-fails
	// (client.ErrBreakerOpen) rather than transport failures.
	Shed int64
	// Issued is the number of operations attempted.
	Issued int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// TenantSheds counts operations the proxy's QoS layer refused with
	// tenant.ShedMsg (zero without Tenants / without a QoS proxy).
	TenantSheds int64
	// Tenants carries per-tenant outcomes in declaration order when
	// the run drew tenants (nil otherwise).
	Tenants []TenantStats
}

// TenantStats is one tenant's slice of a run.
type TenantStats struct {
	// Name echoes the spec.
	Name string
	// Issued counts the tenant's attempted operations; Sheds the
	// subset the proxy refused with tenant.ShedMsg.
	Issued int64
	Sheds  int64
	// Latency is the tenant's per-key latency histogram, sheds
	// excluded.
	Latency *stats.Histogram
}

// AchievedRate returns issued ops per second.
func (r *Result) AchievedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Issued) / r.Elapsed.Seconds()
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Client == nil {
		return out, errors.New("loadgen: Client is required")
	}
	if out.Keys == 0 {
		out.Keys = 10000
	}
	if out.Keys < 1 {
		return out, fmt.Errorf("loadgen: Keys=%d must be >= 1", out.Keys)
	}
	if out.KeyPrefix == "" {
		out.KeyPrefix = "mq:"
	}
	if out.ValueSize == 0 {
		out.ValueSize = 100
	}
	if out.ValueSize < 0 {
		return out, fmt.Errorf("loadgen: ValueSize=%d must be >= 0", out.ValueSize)
	}
	switch out.ValueDist {
	case "", ValueDistFixed:
	case ValueDistLogNormal:
		if out.ValueSigma == 0 {
			out.ValueSigma = 0.5
		}
		if out.ValueSigma < 0 {
			return out, fmt.Errorf("loadgen: ValueSigma=%v must be positive", out.ValueSigma)
		}
	default:
		return out, fmt.Errorf("loadgen: ValueDist=%q unknown (%s, %s)",
			out.ValueDist, ValueDistFixed, ValueDistLogNormal)
	}
	if out.ZipfS < 0 {
		return out, fmt.Errorf("loadgen: ZipfS=%v must be >= 0", out.ZipfS)
	}
	if out.Lambda == 0 {
		out.Lambda = 2000
	}
	if !(out.Lambda > 0) {
		return out, fmt.Errorf("loadgen: Lambda=%v must be positive", out.Lambda)
	}
	if out.Xi < 0 || out.Xi >= 1 {
		return out, fmt.Errorf("loadgen: Xi=%v must be in [0, 1)", out.Xi)
	}
	if out.Q < 0 || out.Q >= 1 {
		return out, fmt.Errorf("loadgen: Q=%v must be in [0, 1)", out.Q)
	}
	if out.MissRatio < 0 || out.MissRatio > 1 {
		return out, fmt.Errorf("loadgen: MissRatio=%v must be in [0, 1]", out.MissRatio)
	}
	if out.Ops == 0 {
		out.Ops = 10000
	}
	if out.Ops < 1 {
		return out, fmt.Errorf("loadgen: Ops=%d must be >= 1", out.Ops)
	}
	if out.Workers == 0 {
		out.Workers = 32
	}
	if out.Workers < 1 {
		return out, fmt.Errorf("loadgen: Workers=%d must be >= 1", out.Workers)
	}
	if len(out.Tenants) > 0 {
		if _, err := tenant.New(out.Tenants); err != nil {
			return out, fmt.Errorf("loadgen: %w", err)
		}
	}
	return out, nil
}

// keyName formats the i-th keyspace member.
func keyName(prefix string, i int) string {
	return prefix + strconv.Itoa(i)
}

// missKeyName formats a key that Populate never stores.
func missKeyName(prefix string, i int) string {
	return prefix + "miss:" + strconv.Itoa(i)
}

// Populate stores the whole keyspace through the client so that a
// subsequent Run observes the configured hit ratio.
func Populate(opts Options) error {
	o, err := opts.withDefaults()
	if err != nil {
		return err
	}
	rng := dist.SubRand(o.Seed, 1)
	sizes, maxSize, err := valueSizes(o)
	if err != nil {
		return err
	}
	value := make([]byte, maxSize)
	for i := range value {
		value[i] = 'a' + byte(rng.IntN(26))
	}
	// Every tenant gets its own full keyspace; the no-tenant run keeps
	// the single unprefixed one. Populate runs before the run clock
	// starts, so a -Inf tenant clock admits the stores unthrottled.
	prefixes := []string{""}
	if len(o.Tenants) > 0 {
		prefixes = prefixes[:0]
		for _, sp := range o.Tenants {
			prefixes = append(prefixes, sp.Name+":")
		}
	}
	for _, tp := range prefixes {
		for i := 0; i < o.Keys; i++ {
			v := value
			if sizes != nil {
				v = value[:sizes[i]]
			}
			if err := o.Client.Set(tp+keyName(o.KeyPrefix, i), v, 0, 0); err != nil {
				return fmt.Errorf("loadgen: populate key %s%d: %w", tp, i, err)
			}
		}
	}
	return nil
}

// valueSizes draws the per-key value sizes for Populate: nil (use
// ValueSize) under the fixed law, one size per key index under the
// lognormal law. The draws use their own rng stream (16) so arming
// the size law never perturbs the value bytes of a fixed-size run.
func valueSizes(o Options) ([]int, int, error) {
	if o.ValueDist != ValueDistLogNormal {
		return nil, o.ValueSize, nil
	}
	mean := float64(o.ValueSize)
	ln, err := dist.NewLogNormal(math.Log(mean)-o.ValueSigma*o.ValueSigma/2, o.ValueSigma)
	if err != nil {
		return nil, 0, fmt.Errorf("loadgen: %w", err)
	}
	rng := dist.SubRand(o.Seed, 16)
	sizes := make([]int, o.Keys)
	maxSize := 1
	for i := range sizes {
		s := int(ln.Sample(rng))
		if s < 1 {
			s = 1
		}
		if limit := 8 * o.ValueSize; s > limit {
			s = limit
		}
		sizes[i] = s
		if s > maxSize {
			maxSize = s
		}
	}
	return sizes, maxSize, nil
}

// Run executes the open-loop workload until Ops operations are issued
// or ctx is canceled.
func Run(ctx context.Context, opts Options) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	gap, err := dist.NewGeneralizedPareto(o.Xi, (1-o.Q)*o.Lambda)
	if err != nil {
		return nil, err
	}
	batch, err := dist.NewGeometricBatch(o.Q)
	if err != nil {
		return nil, err
	}
	popularity, err := dist.NewZipf(o.Keys, o.ZipfS)
	if err != nil {
		return nil, err
	}

	var tenantMix *dist.Weighted
	if len(o.Tenants) > 0 {
		tenantMix, err = dist.NewWeighted(tenant.Shares(o.Tenants))
		if err != nil {
			return nil, fmt.Errorf("loadgen: tenant shares: %w", err)
		}
	}
	var (
		rngGap    = dist.SubRand(o.Seed, 11)
		rngBatch  = dist.SubRand(o.Seed, 12)
		rngKey    = dist.SubRand(o.Seed, 13)
		rngMiss   = dist.SubRand(o.Seed, 14)
		rngTenant = dist.SubRand(o.Seed, 15)
	)
	res := &Result{Latency: stats.NewHistogram()}
	var (
		mu          sync.Mutex // guards the latency histograms (and Observer in closed loop)
		hits        atomic.Int64
		misses      atomic.Int64
		errs        atomic.Int64
		shed        atomic.Int64
		issued      atomic.Int64
		tenantSheds atomic.Int64
		wg          sync.WaitGroup
		started     = time.Now()
	)
	type tenantCount struct{ issued, sheds atomic.Int64 }
	tcount := make([]tenantCount, len(o.Tenants))
	tenantLat := make([]*stats.Histogram, len(o.Tenants))
	for i := range tenantLat {
		tenantLat[i] = stats.NewHistogram()
	}
	// drawKey picks the next key — and, under a tenant mix, its tenant
	// (rng stream 15; -1 without tenants).
	drawKey := func(rngKey, rngMiss, rngTenant *rand.Rand, popularity *dist.Zipf) (string, int) {
		var key string
		if o.MissRatio > 0 && rngMiss.Float64() < o.MissRatio {
			key = missKeyName(o.KeyPrefix, popularity.SampleInt(rngKey))
		} else {
			key = keyName(o.KeyPrefix, popularity.SampleInt(rngKey))
		}
		if tenantMix == nil {
			return key, -1
		}
		t := tenantMix.SampleInt(rngTenant)
		return o.Tenants[t].Name + ":" + key, t
	}
	executeKey := func(key string, tIdx int) float64 {
		t0 := time.Now()
		var err error
		var hit bool
		if o.UseGetThrough {
			_, hit, err = o.Client.GetThrough(ctx, key)
		} else {
			_, err = o.Client.Get(key)
			hit = err == nil
		}
		lat := time.Since(t0).Seconds()
		if tIdx >= 0 {
			tcount[tIdx].issued.Add(1)
		}
		var se *protocol.ServerError
		if errors.As(err, &se) && se.Line == tenant.ShedMsg {
			// Tenant QoS refusal: counted on its own, no latency sample
			// (the proxy answered from its admission check, not from
			// service).
			tenantSheds.Add(1)
			if tIdx >= 0 {
				tcount[tIdx].sheds.Add(1)
			}
			return lat
		}
		switch {
		case err == nil:
			if hit {
				hits.Add(1)
			} else {
				misses.Add(1)
			}
		case errors.Is(err, client.ErrCacheMiss):
			misses.Add(1)
		default:
			errs.Add(1)
			if errors.Is(err, client.ErrBreakerOpen) {
				shed.Add(1)
			}
		}
		mu.Lock()
		res.Latency.Record(lat)
		if tIdx >= 0 {
			tenantLat[tIdx].Record(lat)
		}
		mu.Unlock()
		if o.OnLatency != nil {
			o.OnLatency(lat)
		}
		return lat
	}
	execute := func(key string, tIdx int) { executeKey(key, tIdx) }
	finish := func() *Result {
		res.Elapsed = time.Since(started)
		res.Hits = hits.Load()
		res.Misses = misses.Load()
		res.Errors = errs.Load()
		res.Shed = shed.Load()
		res.Issued = issued.Load()
		res.TenantSheds = tenantSheds.Load()
		if len(o.Tenants) > 0 {
			res.Tenants = make([]TenantStats, len(o.Tenants))
			for i, sp := range o.Tenants {
				res.Tenants[i] = TenantStats{
					Name:    sp.Name,
					Issued:  tcount[i].issued.Load(),
					Sheds:   tcount[i].sheds.Load(),
					Latency: tenantLat[i],
				}
			}
		}
		return res
	}

	if o.ClosedLoop {
		runClosedLoop(ctx, &o, drawKey, execute, &issued, &mu, started)
		return finish(), nil
	}

	type workItem struct {
		key  string
		tIdx int
		agg  *batchAgg
	}
	work := make(chan workItem, o.Workers)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				lat := executeKey(it.key, it.tIdx)
				if it.agg != nil {
					it.agg.done(lat)
				}
			}
		}()
	}

	// Pacer: open-loop batch arrivals on an absolute schedule. Sleeping
	// until cumulative deadlines (rather than per-gap) keeps the average
	// rate exact despite timer granularity and avoids busy-waiting,
	// which would starve the workers on small machines.
	rec := telemetry.OrNop(o.Recorder)
	sent := 0
	next := time.Now()
pacing:
	for sent < o.Ops {
		select {
		case <-ctx.Done():
			break pacing
		default:
		}
		next = next.Add(time.Duration(gap.Sample(rngGap) * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		n := batch.SampleInt(rngBatch)
		if n > o.Ops-sent {
			n = o.Ops - sent
		}
		agg := &batchAgg{remaining: n, n: n, rec: rec}
		for i := 0; i < n; i++ {
			key, tIdx := drawKey(rngKey, rngMiss, rngTenant, popularity)
			select {
			case work <- workItem{key: key, tIdx: tIdx, agg: agg}:
				sent++
				issued.Add(1)
				if o.Observer != nil {
					o.Observer(time.Since(started), key)
				}
			case <-ctx.Done():
				agg.abandon(n - i) // unpushed keys never complete
				break pacing
			}
		}
	}
	close(work)
	wg.Wait()
	return finish(), nil
}

// batchAgg joins the completion latencies of one concurrently-issued
// batch and records the fork-join spread once the last key finishes.
type batchAgg struct {
	mu        sync.Mutex
	remaining int
	n         int
	max, sum  float64
	rec       telemetry.Recorder
}

// done folds one key's completion latency into the batch.
func (a *batchAgg) done(lat float64) {
	a.mu.Lock()
	a.sum += lat
	if lat > a.max {
		a.max = lat
	}
	a.remaining--
	finished := a.remaining == 0
	n := a.n
	max, sum := a.max, a.sum
	rec := a.rec
	a.mu.Unlock()
	if finished && n > 0 {
		rec.Observe(telemetry.StageForkJoin, max-sum/float64(n))
	}
}

// abandon removes keys that were never issued (context cancellation
// mid-batch) so the batch can still join — without recording, since the
// sample is truncated.
func (a *batchAgg) abandon(k int) {
	a.mu.Lock()
	a.remaining -= k
	a.rec = telemetry.Nop
	a.mu.Unlock()
}

// runClosedLoop issues ops from Workers independent closed loops, each
// waiting an exponential think time between its operations so the
// aggregate target rate is approximately Lambda.
func runClosedLoop(ctx context.Context, o *Options,
	drawKey func(rngKey, rngMiss, rngTenant *rand.Rand, popularity *dist.Zipf) (string, int),
	execute func(string, int),
	issued *atomic.Int64, mu *sync.Mutex, started time.Time) {
	popularity, err := dist.NewZipf(o.Keys, o.ZipfS)
	if err != nil {
		return // options were validated upstream; unreachable
	}
	perWorkerRate := o.Lambda / float64(o.Workers)
	var wg sync.WaitGroup
	var quota atomic.Int64
	for w := 0; w < o.Workers; w++ {
		id := uint64(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var (
				rngThink  = dist.SubRand(o.Seed, 2000+id)
				rngKey    = dist.SubRand(o.Seed, 3000+id)
				rngMiss   = dist.SubRand(o.Seed, 4000+id)
				rngTenant = dist.SubRand(o.Seed, 5000+id)
			)
			for {
				if quota.Add(1) > int64(o.Ops) {
					return
				}
				think := time.Duration(rngThink.ExpFloat64() / perWorkerRate * float64(time.Second))
				timer := time.NewTimer(think)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return
				}
				key, tIdx := drawKey(rngKey, rngMiss, rngTenant, popularity)
				issued.Add(1)
				if o.Observer != nil {
					mu.Lock()
					o.Observer(time.Since(started), key)
					mu.Unlock()
				}
				execute(key, tIdx)
			}
		}()
	}
	wg.Wait()
}
