// Package trace records and replays key-access traces. Traces connect
// the live substrate to the analysis side of the reproduction: the load
// generator can journal the key stream it issued, the mrc package turns
// a trace into a miss-ratio curve (the model's r input), and Replay
// re-drives any consumer — including a live cluster — with the original
// timing.
//
// The format is line-oriented text, one access per line:
//
//	<offset-nanoseconds> <key>\n
//
// chosen over a binary encoding so traces diff, grep and compress well.
package trace

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Record is one key access, stamped with its offset from trace start.
type Record struct {
	Offset time.Duration
	Key    string
}

// ErrSyntax reports a malformed trace line.
var ErrSyntax = errors.New("trace: malformed line")

// Writer journals records to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one record. Keys must be non-empty and contain no
// whitespace or newlines (the memcached key grammar already guarantees
// this for real workloads).
func (t *Writer) Write(rec Record) error {
	if t.err != nil {
		return t.err
	}
	if rec.Key == "" || strings.ContainsAny(rec.Key, " \t\r\n") {
		return fmt.Errorf("trace: invalid key %q", rec.Key)
	}
	if rec.Offset < 0 {
		return fmt.Errorf("trace: negative offset %v", rec.Offset)
	}
	if _, err := t.w.WriteString(strconv.FormatInt(rec.Offset.Nanoseconds(), 10)); err != nil {
		t.err = err
		return err
	}
	if err := t.w.WriteByte(' '); err != nil {
		t.err = err
		return err
	}
	if _, err := t.w.WriteString(rec.Key); err != nil {
		t.err = err
		return err
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
		return err
	}
	t.n++
	return nil
}

// Count reports records written.
func (t *Writer) Count() int64 { return t.n }

// Flush pushes buffered output through.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader parses a trace stream.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64<<10), 64<<10)
	return &Reader{s: s}
}

// Next returns the next record, io.EOF at end of stream, or a
// line-numbered error wrapping ErrSyntax for malformed input.
func (r *Reader) Next() (Record, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue // blank lines and comments are permitted
		}
		sep := strings.IndexByte(line, ' ')
		if sep <= 0 || sep == len(line)-1 {
			return Record{}, fmt.Errorf("%w: line %d: %q", ErrSyntax, r.line, line)
		}
		nanos, err := strconv.ParseInt(line[:sep], 10, 64)
		if err != nil || nanos < 0 {
			return Record{}, fmt.Errorf("%w: line %d: bad offset %q", ErrSyntax, r.line, line[:sep])
		}
		key := strings.TrimSpace(line[sep+1:])
		if strings.ContainsAny(key, " \t") {
			return Record{}, fmt.Errorf("%w: line %d: key contains whitespace", ErrSyntax, r.line)
		}
		return Record{Offset: time.Duration(nanos), Key: key}, nil
	}
	if err := r.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll slurps the remaining records.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Keys extracts just the key column (the mrc package's input).
func Keys(records []Record) []string {
	out := make([]string, len(records))
	for i, rec := range records {
		out[i] = rec.Key
	}
	return out
}

// Replay re-drives the records against fn, honoring inter-access gaps
// scaled by speedup (2.0 = twice as fast; 0 or negative = as fast as
// possible). It stops at the first fn error or context cancellation.
func Replay(ctx context.Context, records []Record, speedup float64, fn func(key string) error) error {
	if fn == nil {
		return errors.New("trace: nil replay function")
	}
	start := time.Now()
	for i, rec := range records {
		if speedup > 0 {
			due := start.Add(time.Duration(float64(rec.Offset) / speedup))
			if d := time.Until(due); d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return ctx.Err()
				}
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := fn(rec.Key); err != nil {
			return fmt.Errorf("trace: replay record %d (%q): %w", i, rec.Key, err)
		}
	}
	return nil
}
