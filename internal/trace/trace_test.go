package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	give := []Record{
		{Offset: 0, Key: "a"},
		{Offset: 1500 * time.Nanosecond, Key: "b:2"},
		{Offset: time.Second, Key: "c-3"},
	}
	for _, rec := range give {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(give) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range give {
		if got[i] != give[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], give[i])
		}
	}
}

func TestWriterValidation(t *testing.T) {
	w := NewWriter(io.Discard)
	bad := []Record{
		{Key: ""},
		{Key: "has space"},
		{Key: "has\nnewline"},
		{Offset: -1, Key: "k"},
	}
	for _, rec := range bad {
		if err := w.Write(rec); err == nil {
			t.Errorf("record %+v accepted", rec)
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n100 key-1\n   \n200 key-2\n"
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Key != "key-2" {
		t.Errorf("got %+v", got)
	}
}

func TestReaderSyntaxErrors(t *testing.T) {
	bad := []string{
		"nokey\n",
		"abc key\n",
		"-5 key\n",
		"100 two words\n",
		"100 \n",
	}
	for _, in := range bad {
		_, err := NewReader(strings.NewReader(in)).ReadAll()
		if !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: err = %v", in, err)
		}
	}
}

func TestKeysExtraction(t *testing.T) {
	recs := []Record{{Key: "x"}, {Key: "y"}}
	keys := Keys(recs)
	if len(keys) != 2 || keys[0] != "x" || keys[1] != "y" {
		t.Errorf("keys = %v", keys)
	}
}

func TestReplayOrderAndCompletion(t *testing.T) {
	records := []Record{
		{Offset: 0, Key: "a"},
		{Offset: time.Millisecond, Key: "b"},
		{Offset: 2 * time.Millisecond, Key: "c"},
	}
	var seen []string
	err := Replay(context.Background(), records, 0, func(key string) error {
		seen = append(seen, key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(seen, "") != "abc" {
		t.Errorf("order = %v", seen)
	}
}

func TestReplayHonorsTiming(t *testing.T) {
	records := []Record{
		{Offset: 0, Key: "a"},
		{Offset: 60 * time.Millisecond, Key: "b"},
	}
	start := time.Now()
	if err := Replay(context.Background(), records, 1.0, func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("replay finished in %v, should pace to ~60ms", elapsed)
	}
	// Speedup 10x compresses the same trace to ~6ms.
	start = time.Now()
	if err := Replay(context.Background(), records, 10, func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("10x replay took %v", elapsed)
	}
}

func TestReplayStopsOnError(t *testing.T) {
	records := []Record{{Key: "a"}, {Key: "boom"}, {Key: "c"}}
	calls := 0
	err := Replay(context.Background(), records, 0, func(key string) error {
		calls++
		if key == "boom" {
			return errors.New("kaput")
		}
		return nil
	})
	if err == nil || calls != 2 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
	if Replay(context.Background(), records, 0, nil) == nil {
		t.Error("nil fn accepted")
	}
}

func TestReplayContextCancel(t *testing.T) {
	records := []Record{
		{Offset: 0, Key: "a"},
		{Offset: 10 * time.Second, Key: "slow"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Replay(ctx, records, 1.0, func(string) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancel did not interrupt the wait")
	}
}

// Property: any trace of valid keys round-trips exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(offsets []uint32, keyIDs []uint16) bool {
		n := len(offsets)
		if len(keyIDs) < n {
			n = len(keyIDs)
		}
		if n == 0 {
			return true
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var give []Record
		for i := 0; i < n; i++ {
			rec := Record{
				Offset: time.Duration(offsets[i]),
				Key:    fmt.Sprintf("key-%d", keyIDs[i]),
			}
			give = append(give, rec)
			if err := w.Write(rec); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i := range give {
			if got[i] != give[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
