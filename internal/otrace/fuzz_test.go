package otrace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzChromeTrace exercises the trace-event exporter two ways: the
// parser must never panic on arbitrary bytes, and any span set derived
// from the input must survive an export → parse round trip with the
// event count preserved.
func FuzzChromeTrace(f *testing.F) {
	f.Add([]byte(`{"traceEvents":[{"name":"client/get","cat":"client","ph":"X","ts":1,"dur":2,"pid":1,"tid":3,"args":{}}]}`))
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Leg 1: arbitrary input must not panic the parser.
		_, _ = ParseChrome(data)

		// Leg 2: deterministically derive spans from the input and
		// round-trip them through the exporter.
		spans := spansFrom(data)
		var buf bytes.Buffer
		if err := WriteChrome(&buf, spans); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		n, err := ParseChrome(buf.Bytes())
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, buf.String())
		}
		if n != len(spans) {
			t.Fatalf("round trip kept %d events, want %d", n, len(spans))
		}
	})
}

// spansFrom decodes fuzz bytes into well-formed spans: 8 bytes of IDs
// and 8 bytes of timing per span, durations forced non-negative.
func spansFrom(data []byte) []Span {
	comps := []string{"client", "proxy", "server", "backend", "sim"}
	var out []Span
	for len(data) >= 16 && len(out) < 64 {
		ids := binary.LittleEndian.Uint64(data)
		tim := binary.LittleEndian.Uint64(data[8:])
		data = data[16:]
		out = append(out, Span{
			Trace:  ids%1024 + 1,
			ID:     ids>>10 + 1,
			Parent: ids >> 40,
			Comp:   comps[ids%uint64(len(comps))],
			Name:   "op",
			Server: int(ids % 8),
			Start:  float64(tim%1e9) / 1e6,
			Dur:    float64(tim>>32%1e6) / 1e6,
		})
	}
	return out
}
