// Package otrace provides request-scoped tracing for the memqlat
// planes: spans carry a trace/span ID pair from the client's MultiGet
// fork-join through the proxy hop, the server's queue/service path and
// the backend miss path, so one slow request can be followed across
// every tier the paper's Theorem 1 decomposes in aggregate.
//
// Spans are recorded against the run clock — wall time on the live
// plane, virtual time on the simulator — into a fixed-size ring, and
// exported as Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// The nil *Tracer is a valid, disabled tracer: every method is a
// no-op that allocates nothing, so instrumented hot paths pay one
// predictable branch when tracing is off.
package otrace

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// wallClock is the default run clock: wall seconds since tracer
// creation, monotonic.
func wallClock() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// Ctx is the propagated identity of an in-flight span: the trace it
// belongs to and the span ID its children should parent under. The
// zero Ctx means "not traced".
type Ctx struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context carries a live trace.
func (c Ctx) Valid() bool { return c.Trace != 0 }

// Span is one timed operation. Start and Dur are seconds on the run
// clock: wall seconds since the tracer was created on the live plane,
// virtual seconds on the sim plane.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	// Comp is the tier that produced the span (client, proxy, server,
	// backend, sim); Name is the operation or stage within it.
	Comp   string
	Name   string
	Server int
	Start  float64
	Dur    float64
}

// Ctx returns the propagation context that parents children under sp.
func (sp Span) Ctx() Ctx { return Ctx{Trace: sp.Trace, Span: sp.ID} }

// Options configures a Tracer.
type Options struct {
	// RingSize caps the number of retained spans (default 16384).
	RingSize int
	// Clock supplies the run clock in seconds. Default: wall seconds
	// since New. The sim plane bypasses it via Emit's explicit times.
	Clock func() float64
	// Slow, when positive, logs the full span tree of any root span
	// whose duration reaches it.
	Slow float64
	// SlowWriter receives slow-request dumps (default os.Stderr).
	SlowWriter io.Writer
}

// Tracer collects spans into a bounded ring. A nil Tracer is disabled:
// all methods no-op without allocating.
type Tracer struct {
	clock func() float64
	slow  float64
	slowW io.Writer

	ids atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64

	slowMu sync.Mutex
}

const defaultRingSize = 16384

// New returns an enabled Tracer.
func New(o Options) *Tracer {
	if o.RingSize <= 0 {
		o.RingSize = defaultRingSize
	}
	if o.Clock == nil {
		o.Clock = wallClock()
	}
	if o.SlowWriter == nil {
		o.SlowWriter = os.Stderr
	}
	return &Tracer{
		clock: o.Clock,
		slow:  o.Slow,
		slowW: o.SlowWriter,
		ring:  make([]Span, 0, o.RingSize),
	}
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Now reads the run clock; 0 when disabled.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// NewID mints a fresh nonzero span or trace ID; 0 when disabled.
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	return t.ids.Add(1)
}

// Begin opens a span under parent: a fresh trace when parent is the
// zero Ctx, a child otherwise. The returned Span's clock is running;
// close it with End. When disabled it returns the zero Span.
func (t *Tracer) Begin(parent Ctx, comp, name string, server int) Span {
	if t == nil {
		return Span{}
	}
	trace := parent.Trace
	if trace == 0 {
		trace = t.NewID()
	}
	return Span{
		Trace:  trace,
		ID:     t.NewID(),
		Parent: parent.Span,
		Comp:   comp,
		Name:   name,
		Server: server,
		Start:  t.clock(),
	}
}

// End stamps sp's duration from the run clock and records it. Ending
// the zero Span (from a disabled Begin) is a no-op.
func (t *Tracer) End(sp Span) {
	if t == nil || sp.ID == 0 {
		return
	}
	sp.Dur = t.clock() - sp.Start
	t.Emit(sp)
}

// Emit records a span with explicit Start/Dur — the seam the simulator
// uses to emit virtual-time spans. No-op when disabled or when sp has
// no ID.
func (t *Tracer) Emit(sp Span) {
	if t == nil || sp.ID == 0 {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
		}
	}
	t.total++
	t.mu.Unlock()
	if t.slow > 0 && sp.Parent == 0 && sp.Dur >= t.slow {
		t.logSlow(sp)
	}
}

// Snapshot copies the retained spans out of the ring, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Stats reports how many spans are retained and how many were recorded
// over the tracer's lifetime; their difference is the eviction count.
func (t *Tracer) Stats() (kept int, total uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring), t.total
}

// logSlow dumps the span tree of root's trace to the slow writer. The
// tree is rebuilt from whatever siblings the ring still holds, so a
// very small ring may truncate it.
func (t *Tracer) logSlow(root Span) {
	var members []Span
	t.mu.Lock()
	for _, sp := range t.ring {
		if sp.Trace == root.Trace {
			members = append(members, sp)
		}
	}
	t.mu.Unlock()
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	fmt.Fprintf(t.slowW, "otrace: slow request trace=%d dur=%.3fms (threshold %.3fms)\n",
		root.Trace, root.Dur*1e3, t.slow*1e3)
	writeTree(t.slowW, members, root.ID, root.Start, 1)
}

// writeTree renders the spans parented (transitively) under parent,
// indented by depth, with starts relative to base.
func writeTree(w io.Writer, spans []Span, parent uint64, base float64, depth int) {
	var kids []Span
	for _, sp := range spans {
		if sp.Parent == parent {
			kids = append(kids, sp)
		}
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].Start < kids[j].Start })
	for _, sp := range kids {
		for i := 0; i < depth; i++ {
			io.WriteString(w, "  ")
		}
		fmt.Fprintf(w, "%s/%s srv=%d start=+%.3fms dur=%.3fms\n",
			sp.Comp, sp.Name, sp.Server, (sp.Start-base)*1e3, sp.Dur*1e3)
		writeTree(w, spans, sp.ID, base, depth+1)
	}
}

// --- context propagation ---------------------------------------------

type ctxKey struct{}

// ContextWith returns ctx carrying c, for hand-off across API seams
// that take a context (the backend filler path).
func ContextWith(ctx context.Context, c Ctx) context.Context {
	if !c.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext extracts the trace context, or the zero Ctx.
func FromContext(ctx context.Context) Ctx {
	c, _ := ctx.Value(ctxKey{}).(Ctx)
	return c
}
