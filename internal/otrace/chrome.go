package otrace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one Chrome trace-event ("X" complete events only).
// ts and dur are microseconds per the trace-event format; tid carries
// the trace ID so chrome://tracing groups a request's spans on one row.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur"`
	Pid  int         `json:"pid"`
	Tid  uint64      `json:"tid"`
	Args chromeAargs `json:"args"`
}

type chromeAargs struct {
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent"`
	Server int    `json:"server"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// displayTimeUnit is advisory; ms keeps sub-ms spans readable.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// WriteChrome writes spans as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. Span times (run-clock seconds) become
// microsecond timestamps; virtual sim time exports identically.
func WriteChrome(w io.Writer, spans []Span) error {
	f := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(spans)),
		DisplayTimeUnit: "ms",
	}
	for _, sp := range spans {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: sp.Comp + "/" + sp.Name,
			Cat:  sp.Comp,
			Ph:   "X",
			Ts:   sp.Start * 1e6,
			Dur:  sp.Dur * 1e6,
			Pid:  1,
			Tid:  sp.Trace,
			Args: chromeAargs{Span: sp.ID, Parent: sp.Parent, Server: sp.Server},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// WriteChrome exports the tracer's retained spans; safe on nil (writes
// an empty trace, still Chrome-loadable).
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChrome(w, t.Snapshot())
}

// ParseChrome validates Chrome trace-event JSON produced by
// WriteChrome (or by hand) and returns the event count. It is the
// check `make obs` and the exporter fuzz target run on the -trace-out
// file: well-formed JSON whose complete events carry a name and
// non-negative duration.
func ParseChrome(data []byte) (int, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("otrace: bad trace JSON: %w", err)
	}
	for i, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			return 0, fmt.Errorf("otrace: event %d: phase %q, want %q", i, ev.Ph, "X")
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("otrace: event %d: missing name", i)
		}
		if ev.Dur < 0 || ev.Ts != ev.Ts || ev.Dur != ev.Dur {
			return 0, fmt.Errorf("otrace: event %d: bad timestamps ts=%v dur=%v", i, ev.Ts, ev.Dur)
		}
	}
	return len(f.TraceEvents), nil
}
