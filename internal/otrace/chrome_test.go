package otrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeRoundTrip(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 2, Parent: 0, Comp: "client", Name: "get", Server: 0, Start: 0, Dur: 0.004},
		{Trace: 1, ID: 3, Parent: 2, Comp: "server", Name: "service", Server: 1, Start: 0.001, Dur: 0.002},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	n, err := ParseChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(spans) {
		t.Fatalf("parsed %d events, want %d", n, len(spans))
	}
	// Inspect the raw shape Chrome expects: complete events with
	// microsecond timestamps.
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	ev := f.TraceEvents[1]
	if ev["ph"] != "X" || ev["name"] != "server/service" || ev["cat"] != "server" {
		t.Errorf("bad event shape: %v", ev)
	}
	if ev["ts"].(float64) != 1000 || ev["dur"].(float64) != 2000 {
		t.Errorf("timestamps not in microseconds: ts=%v dur=%v", ev["ts"], ev["dur"])
	}
}

func TestWriteChromeEmptyTracer(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ParseChrome(buf.Bytes())
	if err != nil || n != 0 {
		t.Fatalf("empty trace parse = %d, %v", n, err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Errorf("missing traceEvents key: %q", buf.String())
	}
}

func TestParseChromeRejects(t *testing.T) {
	bad := []string{
		`{`,
		`{"traceEvents":[{"ph":"B","name":"x","ts":0,"dur":0}]}`,
		`{"traceEvents":[{"ph":"X","name":"","ts":0,"dur":0}]}`,
		`{"traceEvents":[{"ph":"X","name":"x","ts":0,"dur":-1}]}`,
	}
	for _, s := range bad {
		if _, err := ParseChrome([]byte(s)); err == nil {
			t.Errorf("ParseChrome accepted %q", s)
		}
	}
}
