package otrace

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// fakeClock is a settable run clock for deterministic span times.
type fakeClock struct {
	mu  sync.Mutex
	now float64
}

func (c *fakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Set(v float64) {
	c.mu.Lock()
	c.now = v
	c.mu.Unlock()
}

func TestNilTracerIsDisabledNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin(Ctx{}, "client", "get", 0)
	if sp.ID != 0 || sp.Trace != 0 {
		t.Fatalf("nil Begin returned live span %+v", sp)
	}
	tr.End(sp)
	tr.Emit(Span{ID: 1, Trace: 1})
	if tr.NewID() != 0 || tr.Now() != 0 {
		t.Error("nil NewID/Now not zero")
	}
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil Snapshot = %v, want nil", got)
	}
	if kept, total := tr.Stats(); kept != 0 || total != 0 {
		t.Errorf("nil Stats = %d, %d", kept, total)
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Begin(Ctx{}, "server", "handle", 3)
		tr.End(sp)
	})
	if allocs != 0 {
		t.Errorf("disabled Begin/End allocates %v per op", allocs)
	}
}

func TestBeginEndParenting(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{Clock: clk.Now})
	root := tr.Begin(Ctx{}, "client", "get", 0)
	if root.Trace == 0 || root.ID == 0 || root.Parent != 0 {
		t.Fatalf("bad root span %+v", root)
	}
	clk.Set(0.001)
	child := tr.Begin(root.Ctx(), "server", "handle", 2)
	if child.Trace != root.Trace || child.Parent != root.ID {
		t.Fatalf("child %+v not parented under root %+v", child, root)
	}
	clk.Set(0.003)
	tr.End(child)
	clk.Set(0.004)
	tr.End(root)
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Children end first, so the ring holds child then root.
	if spans[0].Dur != 0.002 || spans[1].Dur != 0.004 {
		t.Errorf("durations %v, %v; want 0.002, 0.004", spans[0].Dur, spans[1].Dur)
	}
	if spans[0].Server != 2 {
		t.Errorf("server = %d, want 2", spans[0].Server)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Options{RingSize: 4, Clock: func() float64 { return 0 }})
	for i := 1; i <= 10; i++ {
		tr.Emit(Span{Trace: 1, ID: uint64(i), Comp: "sim", Name: "req"})
	}
	kept, total := tr.Stats()
	if kept != 4 || total != 10 {
		t.Fatalf("Stats = %d, %d; want 4, 10", kept, total)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot has %d spans, want 4", len(spans))
	}
	// Oldest first: 7, 8, 9, 10 survive.
	for i, sp := range spans {
		if want := uint64(7 + i); sp.ID != want {
			t.Errorf("span %d has ID %d, want %d", i, sp.ID, want)
		}
	}
}

func TestSlowLogDumpsTree(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{}
	tr := New(Options{Clock: clk.Now, Slow: 0.010, SlowWriter: &buf})

	// Fast request: below threshold, no dump.
	fast := tr.Begin(Ctx{}, "client", "get", 0)
	clk.Set(0.002)
	tr.End(fast)
	if buf.Len() != 0 {
		t.Fatalf("fast request logged: %q", buf.String())
	}

	// Slow request with a two-level tree.
	clk.Set(0)
	root := tr.Begin(Ctx{}, "client", "multiget", 0)
	leg := tr.Begin(root.Ctx(), "client", "leg", 1)
	srv := tr.Begin(leg.Ctx(), "server", "service", 1)
	clk.Set(0.011)
	tr.End(srv)
	tr.End(leg)
	tr.End(root)
	out := buf.String()
	if !strings.Contains(out, "slow request") {
		t.Fatalf("no slow-request header in %q", out)
	}
	for _, want := range []string{"client/leg", "server/service"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow dump missing %q:\n%s", want, out)
		}
	}
	// The server span nests two levels deep: two leading indents.
	if !strings.Contains(out, "    server/service") {
		t.Errorf("server span not indented as grandchild:\n%s", out)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got.Valid() {
		t.Fatalf("empty context yields %+v", got)
	}
	c := Ctx{Trace: 7, Span: 9}
	ctx = ContextWith(ctx, c)
	if got := FromContext(ctx); got != c {
		t.Fatalf("round trip = %+v, want %+v", got, c)
	}
	// Invalid contexts are not stored.
	base := context.Background()
	if ContextWith(base, Ctx{}) != base {
		t.Error("zero Ctx was stored")
	}
}

func TestConcurrentEmitSnapshot(t *testing.T) {
	tr := New(Options{RingSize: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Begin(Ctx{}, "client", "get", g)
				tr.End(sp)
				if i%100 == 0 {
					tr.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if kept, total := tr.Stats(); kept != 128 || total != 4000 {
		t.Errorf("Stats = %d, %d; want 128, 4000", kept, total)
	}
}
