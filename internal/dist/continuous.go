package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Exponential is the exponential distribution with the given Rate
// (mean 1/Rate). It is the M in the paper's GI^X/M/1 and M/M/1 queues.
type Exponential struct {
	Rate float64
}

var _ Interarrival = Exponential{}

// NewExponential validates rate > 0 and returns the distribution.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Exponential{}, fmt.Errorf("dist: exponential rate %v must be positive and finite", rate)
	}
	return Exponential{Rate: rate}, nil
}

// Sample draws an exponential variate.
func (e Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() / e.Rate }

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// CDF evaluates 1 - e^{-Rate·t}.
func (e Exponential) CDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*t)
}

// LaplaceTransform evaluates Rate/(Rate+s).
func (e Exponential) LaplaceTransform(s float64) float64 { return e.Rate / (e.Rate + s) }

// Deterministic is the degenerate distribution concentrated at Value,
// used for constant network delay and D/M/1 comparisons.
type Deterministic struct {
	Value float64
}

var _ Interarrival = Deterministic{}

// NewDeterministic validates value >= 0.
func NewDeterministic(value float64) (Deterministic, error) {
	if value < 0 || math.IsNaN(value) {
		return Deterministic{}, fmt.Errorf("dist: deterministic value %v must be >= 0", value)
	}
	return Deterministic{Value: value}, nil
}

// Sample returns the constant.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// Mean returns the constant.
func (d Deterministic) Mean() float64 { return d.Value }

// CDF is the unit step at Value.
func (d Deterministic) CDF(t float64) float64 {
	if t < d.Value {
		return 0
	}
	return 1
}

// LaplaceTransform evaluates e^{-s·Value}.
func (d Deterministic) LaplaceTransform(s float64) float64 { return math.Exp(-s * d.Value) }

// Erlang is the Erlang-k distribution: the sum of Shape i.i.d.
// exponentials of the given Rate, mean Shape/Rate. Its squared
// coefficient of variation 1/Shape < 1 makes it the canonical
// smoother-than-Poisson arrival process.
type Erlang struct {
	Shape int
	Rate  float64
}

var _ Interarrival = Erlang{}

// NewErlang validates shape >= 1 and rate > 0.
func NewErlang(shape int, rate float64) (Erlang, error) {
	if shape < 1 {
		return Erlang{}, fmt.Errorf("dist: erlang shape %d must be >= 1", shape)
	}
	if !(rate > 0) {
		return Erlang{}, fmt.Errorf("dist: erlang rate %v must be positive", rate)
	}
	return Erlang{Shape: shape, Rate: rate}, nil
}

// Sample sums Shape exponential draws.
func (e Erlang) Sample(rng *rand.Rand) float64 {
	var sum float64
	for i := 0; i < e.Shape; i++ {
		sum += rng.ExpFloat64()
	}
	return sum / e.Rate
}

// Mean returns Shape/Rate.
func (e Erlang) Mean() float64 { return float64(e.Shape) / e.Rate }

// CDF evaluates 1 - e^{-rt} Σ_{i<Shape} (rt)^i / i!.
func (e Erlang) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	rt := e.Rate * t
	term := 1.0
	sum := 1.0
	for i := 1; i < e.Shape; i++ {
		term *= rt / float64(i)
		sum += term
	}
	return 1 - math.Exp(-rt)*sum
}

// LaplaceTransform evaluates (Rate/(Rate+s))^Shape.
func (e Erlang) LaplaceTransform(s float64) float64 {
	return math.Pow(e.Rate/(e.Rate+s), float64(e.Shape))
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

var _ Interarrival = Uniform{}

// NewUniform validates 0 <= lo < hi.
func NewUniform(lo, hi float64) (Uniform, error) {
	if lo < 0 || !(hi > lo) {
		return Uniform{}, fmt.Errorf("dist: uniform bounds [%v, %v] invalid", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample draws uniformly on [Lo, Hi).
func (u Uniform) Sample(rng *rand.Rand) float64 { return u.Lo + (u.Hi-u.Lo)*rng.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// CDF is linear between the bounds.
func (u Uniform) CDF(t float64) float64 {
	switch {
	case t < u.Lo:
		return 0
	case t >= u.Hi:
		return 1
	default:
		return (t - u.Lo) / (u.Hi - u.Lo)
	}
}

// LaplaceTransform evaluates (e^{-s·Lo} - e^{-s·Hi}) / (s·(Hi-Lo)).
func (u Uniform) LaplaceTransform(s float64) float64 {
	if s == 0 {
		return 1
	}
	return (math.Exp(-s*u.Lo) - math.Exp(-s*u.Hi)) / (s * (u.Hi - u.Lo))
}

// Hyperexponential is a probabilistic mixture of exponentials: with
// probability Probs[i] the variate is exponential with Rates[i]. Its
// squared coefficient of variation exceeds 1, making it the canonical
// burstier-than-Poisson renewal process with a closed-form transform.
type Hyperexponential struct {
	Probs []float64
	Rates []float64
}

var _ Interarrival = Hyperexponential{}

// NewHyperexponential validates matching lengths, probabilities summing
// to 1 and positive rates.
func NewHyperexponential(probs, rates []float64) (Hyperexponential, error) {
	if len(probs) == 0 || len(probs) != len(rates) {
		return Hyperexponential{}, fmt.Errorf("dist: hyperexp needs matching non-empty probs/rates, got %d/%d", len(probs), len(rates))
	}
	var sum float64
	for i := range probs {
		if probs[i] < 0 {
			return Hyperexponential{}, fmt.Errorf("dist: hyperexp prob[%d]=%v negative", i, probs[i])
		}
		if !(rates[i] > 0) {
			return Hyperexponential{}, fmt.Errorf("dist: hyperexp rate[%d]=%v not positive", i, rates[i])
		}
		sum += probs[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		return Hyperexponential{}, fmt.Errorf("dist: hyperexp probs sum to %v, want 1", sum)
	}
	h := Hyperexponential{
		Probs: append([]float64(nil), probs...),
		Rates: append([]float64(nil), rates...),
	}
	return h, nil
}

// Sample picks a phase then draws from its exponential.
func (h Hyperexponential) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	var cum float64
	for i, p := range h.Probs {
		cum += p
		if u < cum {
			return rng.ExpFloat64() / h.Rates[i]
		}
	}
	return rng.ExpFloat64() / h.Rates[len(h.Rates)-1]
}

// Mean returns Σ p_i / r_i.
func (h Hyperexponential) Mean() float64 {
	var m float64
	for i, p := range h.Probs {
		m += p / h.Rates[i]
	}
	return m
}

// CDF evaluates Σ p_i (1 - e^{-r_i t}).
func (h Hyperexponential) CDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	var c float64
	for i, p := range h.Probs {
		c += p * (1 - math.Exp(-h.Rates[i]*t))
	}
	return c
}

// LaplaceTransform evaluates Σ p_i r_i/(r_i+s).
func (h Hyperexponential) LaplaceTransform(s float64) float64 {
	var l float64
	for i, p := range h.Probs {
		l += p * h.Rates[i] / (h.Rates[i] + s)
	}
	return l
}

// Weibull has shape K and scale Lambda: F(t) = 1 − e^{−(t/Lambda)^K}.
// K < 1 gives a heavier-than-exponential tail (another bursty-arrival
// family), K = 1 is exponential, K > 1 lighter. The Laplace transform
// is numeric except at K = 1.
type Weibull struct {
	K, Lambda float64
}

var _ Interarrival = Weibull{}

// NewWeibull validates k > 0 and lambda > 0.
func NewWeibull(k, lambda float64) (Weibull, error) {
	if !(k > 0) {
		return Weibull{}, fmt.Errorf("dist: weibull shape %v must be positive", k)
	}
	if !(lambda > 0) {
		return Weibull{}, fmt.Errorf("dist: weibull scale %v must be positive", lambda)
	}
	return Weibull{K: k, Lambda: lambda}, nil
}

// NewWeibullWithMean builds a Weibull with the given shape whose mean is
// exactly mean (scale = mean / Γ(1+1/k)) — convenient for rate-matched
// arrival comparisons.
func NewWeibullWithMean(k, mean float64) (Weibull, error) {
	if !(mean > 0) {
		return Weibull{}, fmt.Errorf("dist: weibull mean %v must be positive", mean)
	}
	if !(k > 0) {
		return Weibull{}, fmt.Errorf("dist: weibull shape %v must be positive", k)
	}
	return NewWeibull(k, mean/math.Gamma(1+1/k))
}

// Sample inverts the CDF: t = Lambda·(−ln U)^{1/K}.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// Mean returns Lambda·Γ(1+1/K).
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// CDF evaluates 1 − e^{−(t/Lambda)^K}.
func (w Weibull) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(t/w.Lambda, w.K))
}

// LaplaceTransform is closed-form only at K = 1; otherwise numeric.
func (w Weibull) LaplaceTransform(s float64) float64 {
	if s <= 0 {
		return 1
	}
	if w.K == 1 {
		rate := 1 / w.Lambda
		return rate / (rate + s)
	}
	return laplaceFromSurvival(func(t float64) float64 {
		if t <= 0 {
			return 1
		}
		return math.Exp(-math.Pow(t/w.Lambda, w.K))
	}, s)
}

// LogNormal has log-mean Mu and log-stddev Sigma. The paper does not use
// it analytically, but real key-value service times are often lognormal;
// it is provided for workload experimentation. Its Laplace transform is
// computed numerically.
type LogNormal struct {
	Mu, Sigma float64
}

var _ Interarrival = LogNormal{}

// NewLogNormal validates sigma > 0.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !(sigma > 0) {
		return LogNormal{}, fmt.Errorf("dist: lognormal sigma %v must be positive", sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Sample draws exp(Mu + Sigma·Z).
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// CDF evaluates Φ((ln t - Mu)/Sigma).
func (l LogNormal) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(t)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// LaplaceTransform integrates the survival function numerically.
func (l LogNormal) LaplaceTransform(s float64) float64 {
	return laplaceFromSurvival(func(t float64) float64 { return 1 - l.CDF(t) }, s)
}
