package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	// Relative comparison with a tiny absolute floor so that
	// microsecond-scale quantities are compared meaningfully.
	return math.Abs(a-b) <= tol*math.Max(1e-15, math.Max(math.Abs(a), math.Abs(b)))
}

// sampleMean estimates the mean of a sampler with n draws.
func sampleMean(s Sampler, seed uint64, n int) float64 {
	rng := NewRand(seed)
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Sample(rng)
	}
	return sum / float64(n)
}

func TestExponentialBasics(t *testing.T) {
	e, err := NewExponential(80000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Mean(), 1.25e-5, 1e-12) {
		t.Errorf("mean = %v", e.Mean())
	}
	if !almostEqual(e.CDF(e.Mean()), 1-1/math.E, 1e-9) {
		t.Errorf("CDF(mean) = %v", e.CDF(e.Mean()))
	}
	if e.CDF(-1) != 0 {
		t.Error("CDF negative != 0")
	}
	if got := e.LaplaceTransform(80000); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("L(rate) = %v, want 0.5", got)
	}
	if !almostEqual(sampleMean(e, 1, 200000), e.Mean(), 0.02) {
		t.Error("sample mean far from analytic mean")
	}
}

func TestExponentialValidation(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewExponential(rate); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}

func TestDeterministic(t *testing.T) {
	d, err := NewDeterministic(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Sample(NewRand(1)) != 0.5 || d.Mean() != 0.5 {
		t.Error("deterministic sample/mean wrong")
	}
	if d.CDF(0.49) != 0 || d.CDF(0.5) != 1 {
		t.Error("deterministic CDF step wrong")
	}
	if !almostEqual(d.LaplaceTransform(2), math.Exp(-1), 1e-12) {
		t.Error("deterministic transform wrong")
	}
	if _, err := NewDeterministic(-1); err == nil {
		t.Error("negative value accepted")
	}
}

func TestErlang(t *testing.T) {
	e, err := NewErlang(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Mean(), 0.5, 1e-12) {
		t.Errorf("mean = %v", e.Mean())
	}
	if !almostEqual(sampleMean(e, 2, 100000), 0.5, 0.02) {
		t.Error("sample mean off")
	}
	// Erlang(1) must coincide with exponential.
	e1, _ := NewErlang(1, 3)
	exp1, _ := NewExponential(3)
	for _, x := range []float64{0.1, 0.5, 2} {
		if !almostEqual(e1.CDF(x), exp1.CDF(x), 1e-12) {
			t.Errorf("Erlang(1).CDF(%v) != Exp.CDF", x)
		}
		if !almostEqual(e1.LaplaceTransform(x), exp1.LaplaceTransform(x), 1e-12) {
			t.Errorf("Erlang(1).L(%v) != Exp.L", x)
		}
	}
	if _, err := NewErlang(0, 1); err == nil {
		t.Error("shape 0 accepted")
	}
	if _, err := NewErlang(2, 0); err == nil {
		t.Error("rate 0 accepted")
	}
}

func TestUniform(t *testing.T) {
	u, err := NewUniform(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Mean() != 2 {
		t.Errorf("mean = %v", u.Mean())
	}
	if u.CDF(0) != 0 || u.CDF(2) != 0.5 || u.CDF(4) != 1 {
		t.Error("uniform CDF wrong")
	}
	if u.LaplaceTransform(0) != 1 {
		t.Error("L(0) != 1")
	}
	want := (math.Exp(-1) - math.Exp(-3)) / 2
	if !almostEqual(u.LaplaceTransform(1), want, 1e-12) {
		t.Errorf("L(1) = %v, want %v", u.LaplaceTransform(1), want)
	}
	if _, err := NewUniform(3, 1); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewUniform(-1, 1); err == nil {
		t.Error("negative lo accepted")
	}
}

func TestHyperexponential(t *testing.T) {
	h, err := NewHyperexponential([]float64{0.5, 0.5}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.5 + 0.5/3
	if !almostEqual(h.Mean(), wantMean, 1e-12) {
		t.Errorf("mean = %v, want %v", h.Mean(), wantMean)
	}
	if !almostEqual(sampleMean(h, 3, 200000), wantMean, 0.02) {
		t.Error("sample mean off")
	}
	wantL := 0.5*1/(1+2.0) + 0.5*3/(3+2.0)
	if !almostEqual(h.LaplaceTransform(2), wantL, 1e-12) {
		t.Errorf("L(2) = %v, want %v", h.LaplaceTransform(2), wantL)
	}
	// Degenerate single-phase hyperexp equals the exponential.
	h1, _ := NewHyperexponential([]float64{1}, []float64{5})
	e, _ := NewExponential(5)
	if !almostEqual(h1.CDF(0.2), e.CDF(0.2), 1e-12) {
		t.Error("single-phase hyperexp != exponential")
	}
}

func TestHyperexponentialValidation(t *testing.T) {
	cases := []struct {
		probs, rates []float64
	}{
		{nil, nil},
		{[]float64{0.5}, []float64{1, 2}},
		{[]float64{0.5, 0.4}, []float64{1, 2}},  // probs sum 0.9
		{[]float64{-0.5, 1.5}, []float64{1, 2}}, // negative prob
		{[]float64{0.5, 0.5}, []float64{1, 0}},  // zero rate
	}
	for i, c := range cases {
		if _, err := NewHyperexponential(c.probs, c.rates); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLogNormal(t *testing.T) {
	l, err := NewLogNormal(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.Mean(), math.Exp(0.125), 1e-12) {
		t.Errorf("mean = %v", l.Mean())
	}
	if !almostEqual(sampleMean(l, 4, 300000), l.Mean(), 0.02) {
		t.Error("sample mean off")
	}
	if !almostEqual(l.CDF(1), 0.5, 1e-9) { // median = e^mu = 1
		t.Errorf("CDF(median) = %v", l.CDF(1))
	}
	if l.CDF(0) != 0 {
		t.Error("CDF(0) != 0")
	}
	if _, err := NewLogNormal(0, 0); err == nil {
		t.Error("sigma 0 accepted")
	}
}

// Property: every Interarrival's CDF is within [0,1], non-decreasing, and
// the Laplace transform is within (0,1], non-increasing in s.
func TestPropertyInterarrivalLaws(t *testing.T) {
	e, _ := NewExponential(2)
	d, _ := NewDeterministic(0.7)
	er, _ := NewErlang(3, 5)
	u, _ := NewUniform(0.1, 0.9)
	h, _ := NewHyperexponential([]float64{0.3, 0.7}, []float64{0.5, 4})
	g, _ := NewGeneralizedPareto(0.3, 2)
	dists := []Interarrival{e, d, er, u, h, g}
	f := func(rawT, rawS float64) bool {
		tv := math.Abs(math.Mod(rawT, 10))
		sv := math.Abs(math.Mod(rawS, 10))
		for _, dd := range dists {
			c1, c2 := dd.CDF(tv), dd.CDF(tv+0.1)
			if c1 < 0 || c1 > 1 || c2 < c1-1e-12 {
				return false
			}
			l1, l2 := dd.LaplaceTransform(sv), dd.LaplaceTransform(sv+0.1)
			if l1 <= 0 || l1 > 1 || l2 > l1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: L(s) ≈ E[e^{-sT}] estimated by Monte Carlo, for each family.
func TestLaplaceMatchesMonteCarlo(t *testing.T) {
	e, _ := NewExponential(3)
	er, _ := NewErlang(2, 4)
	u, _ := NewUniform(0, 1)
	h, _ := NewHyperexponential([]float64{0.4, 0.6}, []float64{1, 5})
	g, _ := NewGeneralizedPareto(0.15, 2)
	l, _ := NewLogNormal(-1, 0.7)
	dists := map[string]Interarrival{
		"exp": e, "erlang": er, "uniform": u, "hyperexp": h, "gpareto": g, "lognormal": l,
	}
	for name, d := range dists {
		t.Run(name, func(t *testing.T) {
			rng := NewRand(99)
			const n = 200000
			for _, s := range []float64{0.5, 2, 8} {
				var mc float64
				for i := 0; i < n; i++ {
					mc += math.Exp(-s * d.Sample(rng))
				}
				mc /= n
				if got := d.LaplaceTransform(s); !almostEqual(got, mc, 0.02) {
					t.Errorf("L(%v) = %v, Monte Carlo %v", s, got, mc)
				}
			}
		})
	}
}

func TestSubRandIndependence(t *testing.T) {
	a := SubRand(1, 0)
	b := SubRand(1, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("substreams collide %d/100 times", same)
	}
	// Determinism: same (seed, id) yields the same stream.
	c, d := SubRand(7, 3), SubRand(7, 3)
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("SubRand not deterministic")
		}
	}
}

func TestWeibull(t *testing.T) {
	if _, err := NewWeibull(0, 1); err == nil {
		t.Error("shape 0 accepted")
	}
	if _, err := NewWeibull(1, 0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := NewWeibullWithMean(1, 0); err == nil {
		t.Error("mean 0 accepted")
	}
	if _, err := NewWeibullWithMean(-1, 1); err == nil {
		t.Error("negative shape accepted")
	}
	// K=1 is exactly exponential.
	w1, err := NewWeibull(1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewExponential(4)
	for _, x := range []float64{0.01, 0.2, 1} {
		if !almostEqual(w1.CDF(x), e.CDF(x), 1e-12) {
			t.Errorf("Weibull(1).CDF(%v) != Exp.CDF", x)
		}
		if !almostEqual(w1.LaplaceTransform(x), e.LaplaceTransform(x), 1e-12) {
			t.Errorf("Weibull(1).L(%v) != Exp.L", x)
		}
	}
	// Rate-matched construction: mean is exact, sampling agrees.
	for _, k := range []float64{0.7, 1.5, 3} {
		w, err := NewWeibullWithMean(k, 1.0/62500)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(w.Mean(), 1.0/62500, 1e-12) {
			t.Errorf("k=%v: mean = %v", k, w.Mean())
		}
		if got := sampleMean(w, 77, 300000); !almostEqual(got, w.Mean(), 0.02) {
			t.Errorf("k=%v: sample mean %v vs %v", k, got, w.Mean())
		}
	}
	// Heavier tail for k<1: survival beyond 5 means is larger.
	heavy, _ := NewWeibullWithMean(0.6, 1)
	light, _ := NewWeibullWithMean(2, 1)
	if 1-heavy.CDF(5) <= 1-light.CDF(5) {
		t.Error("k=0.6 tail not heavier than k=2")
	}
	if w1.CDF(-1) != 0 || w1.LaplaceTransform(0) != 1 {
		t.Error("edge values wrong")
	}
}

func TestWeibullLaplaceMonteCarlo(t *testing.T) {
	w, err := NewWeibullWithMean(0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(123)
	const n = 200000
	for _, s := range []float64{0.5, 3} {
		var mc float64
		for i := 0; i < n; i++ {
			mc += math.Exp(-s * w.Sample(rng))
		}
		mc /= n
		if got := w.LaplaceTransform(s); !almostEqual(got, mc, 0.02) {
			t.Errorf("L(%v) = %v, Monte Carlo %v", s, got, mc)
		}
	}
}
