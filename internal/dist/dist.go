// Package dist provides the probability distributions used by the
// memqlat model, simulator and load generator: samplers, CDFs, means, and
// Laplace–Stieltjes transforms (needed for the GI/M/1 δ root of the
// paper's eq. 6).
package dist

import (
	"math/rand/v2"
)

// Sampler draws pseudo-random variates.
type Sampler interface {
	// Sample returns one draw from the distribution.
	Sample(rng *rand.Rand) float64
}

// Interarrival is a non-negative continuous distribution suitable for
// modeling inter-arrival gaps: it exposes everything the GI/M/1 analysis
// needs.
type Interarrival interface {
	Sampler

	// Mean returns E[T].
	Mean() float64

	// CDF evaluates P{T <= t}. It must be 0 for t < 0 and non-decreasing.
	CDF(t float64) float64

	// LaplaceTransform evaluates the Laplace–Stieltjes transform
	// L(s) = E[e^{-sT}] for s >= 0.
	LaplaceTransform(s float64) float64
}

// NewRand returns a deterministic PRNG for the given seed, suitable for
// reproducible simulations. Distinct streams for sub-entities should be
// derived with SubRand.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// SubRand derives an independent deterministic stream for entity id from
// a base seed (SplitMix-style avalanche so that nearby ids decorrelate).
func SubRand(seed, id uint64) *rand.Rand {
	x := seed + 0x9e3779b97f4a7c15*(id+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return rand.New(rand.NewPCG(x, x^0xda942042e4dd58b5))
}
