package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// GeometricBatch is the paper's batch-size distribution for concurrent
// key arrivals (§3):
//
//	P{X = n} = q^{n-1}·(1-q),  n = 1, 2, ...
//
// where q is the concurrent probability. The mean batch size is 1/(1-q).
// q = 0 means every batch contains exactly one key.
type GeometricBatch struct {
	// Q is the concurrent probability in [0, 1).
	Q float64
}

// NewGeometricBatch validates 0 <= q < 1.
func NewGeometricBatch(q float64) (GeometricBatch, error) {
	if q < 0 || q >= 1 || math.IsNaN(q) {
		return GeometricBatch{}, fmt.Errorf("dist: concurrent probability q=%v must be in [0, 1)", q)
	}
	return GeometricBatch{Q: q}, nil
}

// SampleInt draws a batch size (>= 1) by inversion.
func (g GeometricBatch) SampleInt(rng *rand.Rand) int {
	if g.Q == 0 {
		return 1
	}
	// P{X > n} = q^n  =>  X = 1 + floor(ln U / ln q) for U uniform(0,1).
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	n := 1 + int(math.Log(u)/math.Log(g.Q))
	if n < 1 {
		return 1
	}
	return n
}

// Sample implements Sampler, returning the batch size as a float64.
func (g GeometricBatch) Sample(rng *rand.Rand) float64 { return float64(g.SampleInt(rng)) }

// Mean returns 1/(1-Q).
func (g GeometricBatch) Mean() float64 { return 1 / (1 - g.Q) }

// PMF evaluates P{X = n}.
func (g GeometricBatch) PMF(n int) float64 {
	if n < 1 {
		return 0
	}
	return math.Pow(g.Q, float64(n-1)) * (1 - g.Q)
}

var _ Sampler = GeometricBatch{}

// Zipf samples integers in [0, N) with probability proportional to
// 1/(rank+1)^S — the standard model for skewed key popularity ("a small
// percentage of values are accessed quite frequently", paper §2.1). The
// implementation precomputes the CDF once and samples by binary search,
// so construction is O(N) and sampling O(log N).
type Zipf struct {
	cdf []float64
	s   float64
}

// NewZipf validates n >= 1 and s >= 0 (s = 0 is uniform).
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: zipf support size %d must be >= 1", n)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("dist: zipf exponent %v must be >= 0", s)
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, s: s}, nil
}

// SampleInt draws a rank in [0, N).
func (z *Zipf) SampleInt(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Weighted samples indices in [0, len(weights)) proportionally to the
// given non-negative weights. It realizes the paper's unbalanced load
// distribution {p_j} when assigning keys to Memcached servers.
type Weighted struct {
	cdf []float64
}

// NewWeighted validates a non-empty, non-negative weight vector with a
// positive sum. Weights need not be normalized.
func NewWeighted(weights []float64) (*Weighted, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("dist: weighted needs at least one weight")
	}
	cdf := make([]float64, len(weights))
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: weight[%d]=%v is negative", i, w)
		}
		sum += w
		cdf[i] = sum
	}
	if !(sum > 0) {
		return nil, fmt.Errorf("dist: weights sum to %v, want > 0", sum)
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Weighted{cdf: cdf}, nil
}

// SampleInt draws an index.
func (w *Weighted) SampleInt(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(w.cdf, u)
}

// PickQuantile maps a deterministic u in [0, 1) to its category — the
// inverse-CDF lookup SampleInt performs, exposed for hash-based
// (deterministic) assignment.
func (w *Weighted) PickQuantile(u float64) int {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return sort.SearchFloat64s(w.cdf, u)
}

// Prob returns the normalized probability of index i.
func (w *Weighted) Prob(i int) float64 {
	if i < 0 || i >= len(w.cdf) {
		return 0
	}
	if i == 0 {
		return w.cdf[0]
	}
	return w.cdf[i] - w.cdf[i-1]
}

// N returns the number of categories.
func (w *Weighted) N() int { return len(w.cdf) }

// Multinomial draws counts per category for n trials with the given
// weighted category distribution. Used to assign a request's N keys to
// the M servers according to {p_j}.
func (w *Weighted) Multinomial(rng *rand.Rand, n int) []int {
	counts := make([]int, w.N())
	for i := 0; i < n; i++ {
		counts[w.SampleInt(rng)]++
	}
	return counts
}

// SamplePoisson draws from Poisson(mean): Knuth's product method for
// small means, a normal approximation (rounded, clamped at 0) for large
// means. Used to sample per-request miss counts when N is too large for
// per-key Bernoulli draws.
func SamplePoisson(rng *rand.Rand, mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		var k int64
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	k := int64(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
	if k < 0 {
		return 0
	}
	return k
}

// SampleBinomial draws from Binomial(n, p): exact Bernoulli summation
// for small n, Poisson/normal approximations for large n with small or
// moderate p.
func SampleBinomial(rng *rand.Rand, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 1024 {
		var k int64
		for i := int64(0); i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	if p < 0.05 {
		k := SamplePoisson(rng, mean)
		if k > n {
			return n
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int64(math.Round(mean + sd*rng.NormFloat64()))
	if k < 0 {
		return 0
	}
	if k > n {
		return n
	}
	return k
}

// SampleMaxExponential draws max(X_1..X_k) for i.i.d. Exp(rate) in O(1)
// by inverting the CDF (1-e^{-rate·t})^k.
func SampleMaxExponential(rng *rand.Rand, rate float64, k int64) float64 {
	if k <= 0 || !(rate > 0) {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	// t = -ln(1 - u^{1/k}) / rate, computed stably: u^{1/k} near 1 for
	// large k, so use expm1/log1p forms.
	logU := math.Log(u) / float64(k)
	inner := -math.Expm1(logU) // 1 - u^{1/k}
	return -math.Log(inner) / rate
}
