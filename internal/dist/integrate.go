package dist

import "math"

// adaptiveSimpson integrates f over [a, b] with adaptive Simpson
// quadrature to the requested absolute tolerance. maxDepth bounds the
// recursion so pathological integrands terminate.
func adaptiveSimpson(f func(float64) float64, a, b, tol float64, maxDepth int) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := simpson(a, b, fa, fc, fb)
	return adaptiveSimpsonAux(f, a, b, fa, fb, fc, whole, tol, maxDepth)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpsonAux(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := (a + b) / 2
	d, e := (a+c)/2, (c+b)/2
	fd, fe := f(d), f(e)
	left := simpson(a, c, fa, fd, fc)
	right := simpson(c, b, fc, fe, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonAux(f, a, c, fa, fc, fd, left, tol/2, depth-1) +
		adaptiveSimpsonAux(f, c, b, fc, fb, fe, right, tol/2, depth-1)
}

// laplaceFromSurvival computes L(s) = E[e^{-sT}] for a non-negative
// random variable from its survival function S(t) = 1 - CDF(t) using
//
//	E[e^{-sT}] = 1 - s ∫₀^∞ e^{-st} S(t) dt = 1 - ∫₀^∞ e^{-u} S(u/s) du.
//
// The substitution u = s·t bounds the integrand by e^{-u}, so truncating
// at u = 60 (e^{-60} ≈ 9e-27) is exact to double precision.
func laplaceFromSurvival(survival func(float64) float64, s float64) float64 {
	if s <= 0 {
		return 1
	}
	const uMax = 60.0
	integrand := func(u float64) float64 {
		return math.Exp(-u) * survival(u/s)
	}
	v := adaptiveSimpson(integrand, 0, uMax, 1e-12, 40)
	l := 1 - v
	// Clamp tiny numerical overshoot: a Laplace transform lies in [0, 1].
	if l < 0 {
		return 0
	}
	if l > 1 {
		return 1
	}
	return l
}
