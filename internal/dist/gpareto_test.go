package dist

import (
	"math"
	"testing"
)

func TestGeneralizedParetoValidation(t *testing.T) {
	cases := []struct{ xi, lambda float64 }{
		{-0.1, 1}, {1, 1}, {1.5, 1}, {math.NaN(), 1}, {0.5, 0}, {0.5, -2},
	}
	for _, c := range cases {
		if _, err := NewGeneralizedPareto(c.xi, c.lambda); err == nil {
			t.Errorf("xi=%v lambda=%v accepted", c.xi, c.lambda)
		}
	}
}

func TestGeneralizedParetoMeanIsInverseLambda(t *testing.T) {
	for _, xi := range []float64{0, 0.15, 0.4, 0.8} {
		g, err := NewGeneralizedPareto(xi, 62500)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(g.Mean(), 1.0/62500, 1e-12) {
			t.Errorf("xi=%v: mean = %v", xi, g.Mean())
		}
		// Empirical mean check (heavy tails need many samples; keep xi<0.9
		// tolerance loose).
		tol := 0.02
		if xi > 0.5 {
			tol = 0.15
		}
		if got := sampleMean(g, 42, 500000); !almostEqual(got, g.Mean(), tol) {
			t.Errorf("xi=%v: sample mean %v vs %v", xi, got, g.Mean())
		}
	}
}

func TestGeneralizedParetoZeroXiIsExponential(t *testing.T) {
	g, _ := NewGeneralizedPareto(0, 5)
	e, _ := NewExponential(5)
	for _, x := range []float64{0.01, 0.1, 1, 3} {
		if !almostEqual(g.CDF(x), e.CDF(x), 1e-12) {
			t.Errorf("CDF(%v): gp %v vs exp %v", x, g.CDF(x), e.CDF(x))
		}
		if !almostEqual(g.LaplaceTransform(x), e.LaplaceTransform(x), 1e-12) {
			t.Errorf("L(%v): gp %v vs exp %v", x, g.LaplaceTransform(x), e.LaplaceTransform(x))
		}
	}
}

func TestGeneralizedParetoCDFMatchesPaperForm(t *testing.T) {
	// Paper eq. 24 with lambda = 62.5 Kps, xi = 0.15: spot-check a value.
	g, _ := NewGeneralizedPareto(0.15, 62500)
	tt := 16e-6 // one mean gap
	want := 1 - math.Pow(1+0.15*62500*tt/(1-0.15), -1/0.15)
	if got := g.CDF(tt); !almostEqual(got, want, 1e-12) {
		t.Errorf("CDF = %v, want %v", got, want)
	}
}

func TestGeneralizedParetoSurvivalComplement(t *testing.T) {
	g, _ := NewGeneralizedPareto(0.3, 10)
	for _, x := range []float64{0, 0.01, 0.1, 1} {
		if !almostEqual(g.CDF(x)+g.Survival(x), 1, 1e-12) {
			t.Errorf("CDF+Survival != 1 at %v", x)
		}
	}
}

func TestGeneralizedParetoTailHeavierWithXi(t *testing.T) {
	// At several gaps beyond the mean, survival should increase with xi.
	light, _ := NewGeneralizedPareto(0.1, 1)
	heavy, _ := NewGeneralizedPareto(0.6, 1)
	for _, x := range []float64{3.0, 5, 10} {
		if heavy.Survival(x) <= light.Survival(x) {
			t.Errorf("at t=%v heavier tail not heavier: %v <= %v",
				x, heavy.Survival(x), light.Survival(x))
		}
	}
}

func TestGeneralizedParetoSquaredCV(t *testing.T) {
	g, _ := NewGeneralizedPareto(0.25, 1)
	if !almostEqual(g.SquaredCV(), 2, 1e-12) {
		t.Errorf("SCV = %v, want 2", g.SquaredCV())
	}
	g0, _ := NewGeneralizedPareto(0, 1)
	if !almostEqual(g0.SquaredCV(), 1, 1e-12) {
		t.Errorf("SCV(0) = %v, want 1", g0.SquaredCV())
	}
	gh, _ := NewGeneralizedPareto(0.5, 1)
	if !math.IsInf(gh.SquaredCV(), 1) {
		t.Errorf("SCV(0.5) should be +Inf")
	}
}

func TestGeneralizedParetoLaplaceEdges(t *testing.T) {
	g, _ := NewGeneralizedPareto(0.15, 62500)
	if g.LaplaceTransform(0) != 1 {
		t.Error("L(0) != 1")
	}
	if g.LaplaceTransform(-5) != 1 {
		t.Error("L(s<0) should clamp to 1")
	}
	// L decreasing towards 0 for large s.
	if g.LaplaceTransform(1e9) > 0.01 {
		t.Error("L(huge) not near 0")
	}
}
