package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// GeneralizedPareto is the Generalized Pareto inter-arrival distribution
// the paper uses to model the Facebook trace (eq. 24):
//
//	F(t) = 1 - (1 + ξ·λ·t / (1-ξ))^{-1/ξ},   0 <= ξ < 1,
//
// i.e. shape ξ (the "burst degree") and scale σ = (1-ξ)/λ so that the
// mean inter-arrival gap is exactly 1/λ. ξ = 0 degenerates to the
// exponential distribution with rate λ (Poisson arrivals); larger ξ gives
// a heavier tail and burstier arrivals.
type GeneralizedPareto struct {
	// Xi is the shape ("burst degree"), 0 <= Xi < 1 so the mean exists
	// and equals 1/Lambda.
	Xi float64
	// Lambda is the mean arrival rate (1 / mean gap).
	Lambda float64
}

var _ Interarrival = GeneralizedPareto{}

// NewGeneralizedPareto validates 0 <= xi < 1 and lambda > 0.
func NewGeneralizedPareto(xi, lambda float64) (GeneralizedPareto, error) {
	if xi < 0 || xi >= 1 || math.IsNaN(xi) {
		return GeneralizedPareto{}, fmt.Errorf("dist: pareto shape xi=%v must be in [0, 1)", xi)
	}
	if !(lambda > 0) {
		return GeneralizedPareto{}, fmt.Errorf("dist: pareto rate lambda=%v must be positive", lambda)
	}
	return GeneralizedPareto{Xi: xi, Lambda: lambda}, nil
}

// scale returns σ = (1-ξ)/λ (σ = 1/λ when ξ = 0).
func (g GeneralizedPareto) scale() float64 { return (1 - g.Xi) / g.Lambda }

// Sample inverts the CDF: t = σ/ξ·((1-u)^{-ξ} - 1), or exponential when
// ξ = 0.
func (g GeneralizedPareto) Sample(rng *rand.Rand) float64 {
	if g.Xi == 0 {
		return rng.ExpFloat64() / g.Lambda
	}
	u := rng.Float64() // uniform in [0, 1)
	return g.scale() / g.Xi * (math.Pow(1-u, -g.Xi) - 1)
}

// Mean returns 1/Lambda.
func (g GeneralizedPareto) Mean() float64 { return 1 / g.Lambda }

// CDF evaluates the paper's eq. 24.
func (g GeneralizedPareto) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if g.Xi == 0 {
		return 1 - math.Exp(-g.Lambda*t)
	}
	return 1 - math.Pow(1+g.Xi*t/g.scale(), -1/g.Xi)
}

// Survival evaluates 1 - CDF(t) without cancellation for large t.
func (g GeneralizedPareto) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	if g.Xi == 0 {
		return math.Exp(-g.Lambda * t)
	}
	return math.Pow(1+g.Xi*t/g.scale(), -1/g.Xi)
}

// LaplaceTransform has no closed form for ξ > 0; it is evaluated by
// numerical integration of the survival function (exact-to-double
// truncation, see laplaceFromSurvival). ξ = 0 uses the exponential
// closed form.
func (g GeneralizedPareto) LaplaceTransform(s float64) float64 {
	if s <= 0 {
		return 1
	}
	if g.Xi == 0 {
		return g.Lambda / (g.Lambda + s)
	}
	return laplaceFromSurvival(g.Survival, s)
}

// SquaredCV returns the squared coefficient of variation
// Var[T]/E[T]² = (1)/(1-2ξ) · ... — for the GP with our parameterization
// Var = σ²/((1-ξ)²(1-2ξ)), so SCV = 1/(1-2ξ) for ξ < 1/2 and +Inf
// otherwise. This is the standard burstiness summary.
func (g GeneralizedPareto) SquaredCV() float64 {
	if g.Xi >= 0.5 {
		return math.Inf(1)
	}
	return 1 / (1 - 2*g.Xi)
}
