package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometricBatchValidation(t *testing.T) {
	for _, q := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := NewGeometricBatch(q); err == nil {
			t.Errorf("q=%v accepted", q)
		}
	}
}

func TestGeometricBatchZeroQ(t *testing.T) {
	g, err := NewGeometricBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(1)
	for i := 0; i < 100; i++ {
		if got := g.SampleInt(rng); got != 1 {
			t.Fatalf("q=0 batch size = %d, want 1", got)
		}
	}
	if g.Mean() != 1 {
		t.Errorf("mean = %v", g.Mean())
	}
}

func TestGeometricBatchMeanAndPMF(t *testing.T) {
	g, _ := NewGeometricBatch(0.1) // the paper's Facebook workload
	if !almostEqual(g.Mean(), 1/0.9, 1e-12) {
		t.Errorf("mean = %v", g.Mean())
	}
	if !almostEqual(g.PMF(1), 0.9, 1e-12) || !almostEqual(g.PMF(2), 0.09, 1e-12) {
		t.Errorf("PMF wrong: %v %v", g.PMF(1), g.PMF(2))
	}
	if g.PMF(0) != 0 {
		t.Error("PMF(0) != 0")
	}
	// Empirical mean.
	rng := NewRand(2)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(g.SampleInt(rng))
	}
	if !almostEqual(sum/n, g.Mean(), 0.01) {
		t.Errorf("empirical mean %v vs %v", sum/n, g.Mean())
	}
}

func TestGeometricBatchPMFSumsToOne(t *testing.T) {
	g, _ := NewGeometricBatch(0.5)
	var sum float64
	for n := 1; n <= 200; n++ {
		sum += g.PMF(n)
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("PMF sum = %v", sum)
	}
}

// Property: batch sizes are always >= 1 for any valid q.
func TestGeometricBatchPropertyPositive(t *testing.T) {
	f := func(rawQ float64, seed uint64) bool {
		q := math.Abs(math.Mod(rawQ, 0.999))
		g, err := NewGeometricBatch(q)
		if err != nil {
			return false
		}
		rng := NewRand(seed)
		for i := 0; i < 50; i++ {
			if g.SampleInt(rng) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("negative exponent accepted")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !almostEqual(z.Prob(i), 0.25, 1e-12) {
			t.Errorf("prob(%d) = %v", i, z.Prob(i))
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if z.Prob(0) <= z.Prob(1) || z.Prob(1) <= z.Prob(10) {
		t.Error("zipf probabilities not decreasing")
	}
	if z.N() != 1000 {
		t.Errorf("N = %d", z.N())
	}
	// Empirical frequency of rank 0 matches Prob(0).
	rng := NewRand(5)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if z.SampleInt(rng) == 0 {
			hits++
		}
	}
	if !almostEqual(float64(hits)/n, z.Prob(0), 0.05) {
		t.Errorf("empirical p0 %v vs %v", float64(hits)/n, z.Prob(0))
	}
	if z.Prob(-1) != 0 || z.Prob(1000) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewWeighted([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewWeighted([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedProbabilities(t *testing.T) {
	w, err := NewWeighted([]float64{3, 1}) // p = {0.75, 0.25}
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w.Prob(0), 0.75, 1e-12) || !almostEqual(w.Prob(1), 0.25, 1e-12) {
		t.Errorf("probs %v %v", w.Prob(0), w.Prob(1))
	}
	rng := NewRand(6)
	counts := make([]int, 2)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.SampleInt(rng)]++
	}
	if !almostEqual(float64(counts[0])/n, 0.75, 0.02) {
		t.Errorf("empirical p0 = %v", float64(counts[0])/n)
	}
}

func TestWeightedZeroWeightNeverSampled(t *testing.T) {
	w, err := NewWeighted([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(7)
	for i := 0; i < 10000; i++ {
		if w.SampleInt(rng) == 1 {
			t.Fatal("zero-weight category sampled")
		}
	}
}

func TestWeightedMultinomial(t *testing.T) {
	w, _ := NewWeighted([]float64{0.25, 0.25, 0.25, 0.25})
	rng := NewRand(8)
	counts := w.Multinomial(rng, 150)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 150 {
		t.Fatalf("multinomial total = %d, want 150", total)
	}
	if len(counts) != 4 {
		t.Fatalf("len = %d", len(counts))
	}
}

// Property: Weighted probabilities sum to 1 regardless of scaling.
func TestWeightedPropertyNormalized(t *testing.T) {
	f := func(raw []float64) bool {
		var weights []float64
		for _, r := range raw {
			w := math.Abs(math.Mod(r, 100))
			if !math.IsNaN(w) {
				weights = append(weights, w)
			}
		}
		wd, err := NewWeighted(weights)
		if err != nil {
			return true // invalid inputs are allowed to be rejected
		}
		var sum float64
		for i := 0; i < wd.N(); i++ {
			sum += wd.Prob(i)
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSamplePoisson(t *testing.T) {
	rng := NewRand(31)
	for _, mean := range []float64{0, 0.5, 5, 50, 5000} {
		var sum, sumSq float64
		const n = 50000
		for i := 0; i < n; i++ {
			k := float64(SamplePoisson(rng, mean))
			sum += k
			sumSq += k * k
		}
		got := sum / n
		if mean == 0 {
			if got != 0 {
				t.Errorf("Poisson(0) mean = %v", got)
			}
			continue
		}
		if !almostEqual(got, mean, 0.05) {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
		variance := sumSq/n - got*got
		if !almostEqual(variance, mean, 0.1) {
			t.Errorf("Poisson(%v) variance = %v", mean, variance)
		}
	}
}

func TestSampleBinomial(t *testing.T) {
	rng := NewRand(32)
	cases := []struct {
		n int64
		p float64
	}{
		{0, 0.5}, {10, 0}, {10, 1}, {100, 0.3}, {10000, 0.01}, {1000000, 0.001}, {100000, 0.4},
	}
	for _, c := range cases {
		var sum float64
		const trials = 20000
		for i := 0; i < trials; i++ {
			k := SampleBinomial(rng, c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%v) out of range: %d", c.n, c.p, k)
			}
			sum += float64(k)
		}
		want := float64(c.n) * c.p
		if want == 0 {
			if sum != 0 {
				t.Errorf("Binomial(%d,%v) nonzero", c.n, c.p)
			}
			continue
		}
		if c.p >= 1 {
			if sum/trials != float64(c.n) {
				t.Errorf("Binomial(n,1) != n")
			}
			continue
		}
		if !almostEqual(sum/trials, want, 0.05) {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, sum/trials, want)
		}
	}
}

func TestSampleMaxExponential(t *testing.T) {
	rng := NewRand(33)
	// Mean of max of k exponentials = H_k / rate.
	for _, k := range []int64{1, 5, 100} {
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			sum += SampleMaxExponential(rng, 1000, k)
		}
		var hk float64
		for i := int64(1); i <= k; i++ {
			hk += 1 / float64(i)
		}
		want := hk / 1000
		if !almostEqual(sum/n, want, 0.03) {
			t.Errorf("max of %d: mean = %v, want %v", k, sum/n, want)
		}
	}
	if SampleMaxExponential(rng, 1000, 0) != 0 {
		t.Error("k=0 should be 0")
	}
	if SampleMaxExponential(rng, 0, 5) != 0 {
		t.Error("rate=0 should be 0")
	}
}
