package tenant

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"memqlat/internal/dist"
)

// TestBucketDeterministicReplay is the sim-vs-live contract: the admit/
// shed decision sequence is a pure function of the (now, ops, bytes)
// arrival sequence, so replaying the same arrivals through a fresh
// limiter — the way the composition sim replays the live plane's
// schedule on virtual time — yields byte-identical decisions.
func TestBucketDeterministicReplay(t *testing.T) {
	specs := []Spec{
		{Name: "acme", Rate: 100, Burst: 10, Share: 0.5},
		{Name: "evil", Class: ClassBronze, Rate: 50, Share: 0.3},
		{Name: "vip", Class: ClassGold, Rate: 10, Burst: 2, Share: 0.2},
		{Name: "heavy", Rate: 1000, Burst: 20, ByteRate: 5000, ByteBurst: 500},
	}
	rng := dist.SubRand(42, 1)
	type arrival struct {
		tenant string
		now    float64
		ops    int
		nbytes int
	}
	var arrivals []arrival
	now := 0.0
	for i := 0; i < 5000; i++ {
		now += rng.ExpFloat64() / 400
		arrivals = append(arrivals, arrival{
			tenant: specs[rng.IntN(len(specs))].Name,
			now:    now,
			ops:    1 + rng.IntN(3),
			nbytes: rng.IntN(300),
		})
	}
	run := func() []bool {
		l, err := New(specs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, len(arrivals))
		for i, a := range arrivals {
			out[i] = l.Lookup(a.tenant).Admit(a.now, a.ops, a.nbytes)
		}
		return out
	}
	first := run()
	second := run()
	sheds := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("arrival %d: replay disagrees (%v vs %v)", i, first[i], second[i])
		}
		if !first[i] {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("schedule never shed; the table exercises nothing")
	}
}

// TestBucketTable pins exact admit/shed sequences for hand-computable
// schedules.
func TestBucketTable(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		// each step: time, ops, bytes -> want admit
		steps []struct {
			now    float64
			ops    int
			nbytes int
			want   bool
		}
	}{
		{
			name: "burst-then-refill",
			spec: Spec{Name: "a", Rate: 10, Burst: 2},
			steps: []struct {
				now    float64
				ops    int
				nbytes int
				want   bool
			}{
				{0, 1, 0, true},     // tokens 2 -> 1
				{0, 1, 0, true},     // 1 -> 0
				{0, 1, 0, false},    // empty
				{0.05, 1, 0, false}, // +0.5 tokens < 1
				{0.1, 1, 0, true},   // +0.5 more -> 1
				{0.1, 1, 0, false},
				{1.0, 2, 0, true},  // 9 refilled, capped at burst 2
				{1.0, 1, 0, false}, // burst spent
			},
		},
		{
			name: "gold-never-sheds",
			spec: Spec{Name: "g", Class: ClassGold, Rate: 1, Burst: 1},
			steps: []struct {
				now    float64
				ops    int
				nbytes int
				want   bool
			}{
				{0, 5, 0, true},
				{0, 5, 0, true},
				{0.001, 50, 0, true},
			},
		},
		{
			name: "byte-quota",
			spec: Spec{Name: "b", ByteRate: 100, ByteBurst: 150},
			steps: []struct {
				now    float64
				ops    int
				nbytes int
				want   bool
			}{
				{0, 1, 100, true},  // 150 -> 50
				{0, 1, 100, false}, // 50 < 100
				{0, 1, 0, true},    // reads cost no bytes
				{1.0, 1, 100, true},
			},
		},
		{
			name: "pre-start-clock-admits-all",
			spec: Spec{Name: "p", Rate: 1, Burst: 1},
			steps: []struct {
				now    float64
				ops    int
				nbytes int
				want   bool
			}{
				{math.Inf(-1), 100, 0, true},
				{math.Inf(-1), 100, 0, true},
				{0, 1, 0, true}, // bucket still full at the epoch
				{0, 1, 0, false},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := New([]Spec{tc.spec})
			if err != nil {
				t.Fatal(err)
			}
			tn := l.Lookup(tc.spec.Name)
			for i, st := range tc.steps {
				if got := tn.Admit(st.now, st.ops, st.nbytes); got != st.want {
					t.Fatalf("step %d (now=%v ops=%d bytes=%d): admit=%v want %v",
						i, st.now, st.ops, st.nbytes, got, st.want)
				}
			}
		})
	}
}

func TestBronzeHasNoBurst(t *testing.T) {
	l, err := New([]Spec{{Name: "br", Class: ClassBronze, Rate: 100, Burst: 50}})
	if err != nil {
		t.Fatal(err)
	}
	tn := l.Lookup("br")
	if b := tn.Spec().Burst; b != 1 {
		t.Fatalf("bronze burst = %v, want clamp to 1", b)
	}
	if !tn.Admit(10, 1, 0) {
		t.Fatal("first op after a long idle gap must admit")
	}
	// A long idle gap banks nothing: the very next op at the same
	// instant sheds.
	if tn.Admit(10, 1, 0) {
		t.Fatal("bronze must not burst after idling")
	}
}

func TestFromKey(t *testing.T) {
	l, err := New([]Spec{{Name: "acme", Rate: 10}, {Name: "evil", Rate: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		key  string
		want string
	}{
		{"acme:user:17", "acme"},
		{"evil:0", "evil"},
		{"unknown:0", DefaultName},
		{"noprefix", DefaultName},
		{":weird", DefaultName},
		{"", DefaultName},
	} {
		if got := l.FromKey([]byte(tc.key)).Name(); got != tc.want {
			t.Fatalf("FromKey(%q) = %q, want %q", tc.key, got, tc.want)
		}
	}
	if l.Lookup("nope") != nil {
		t.Fatal("Lookup of undeclared tenant should be nil")
	}
	if l.Default().Class() != ClassGold {
		t.Fatal("implicit catch-all must be gold (never sheds)")
	}
}

func TestDefaultOverride(t *testing.T) {
	l, err := New([]Spec{{Name: "*", Rate: 5, Burst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	def := l.FromKey([]byte("anything"))
	if def.Name() != DefaultName || def.Spec().Rate != 5 {
		t.Fatalf("declared * spec not applied: %+v", def.Spec())
	}
	if !def.Admit(0, 1, 0) || def.Admit(0, 1, 0) {
		t.Fatal("overridden catch-all must enforce its bucket")
	}
	snaps := l.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("declared catch-all must not double-report: %d snapshots", len(snaps))
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("acme:class=gold,rate=500,burst=50,share=0.5; evil:rate=200,byterate=1e6,byteburst=2048,share=0.5 ;bare")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Name != "acme" || specs[0].Class != ClassGold || specs[0].Rate != 500 || specs[0].Share != 0.5 {
		t.Fatalf("acme parsed wrong: %+v", specs[0])
	}
	if specs[1].ByteRate != 1e6 || specs[1].ByteBurst != 2048 {
		t.Fatalf("evil parsed wrong: %+v", specs[1])
	}
	if specs[2].Name != "bare" || specs[2].Rate != 0 {
		t.Fatalf("bare parsed wrong: %+v", specs[2])
	}
	if got, err := ParseSpecs("  "); err != nil || got != nil {
		t.Fatalf("blank input: %v %v", got, err)
	}
	for _, bad := range []string{
		"a:rate",          // not key=value
		"a:rate=x",        // bad float
		"a:frobs=1",       // unknown key
		"a:class=plastic", // bad class (caught at New)
	} {
		specs, err := ParseSpecs(bad)
		if err == nil {
			_, err = New(specs)
		}
		if err == nil {
			t.Fatalf("ParseSpecs/New(%q) accepted", bad)
		}
	}
}

func TestNewRejectsBadSpecs(t *testing.T) {
	for _, tc := range []struct {
		name  string
		specs []Spec
	}{
		{"empty name", []Spec{{}}},
		{"reserved chars", []Spec{{Name: "a:b"}}},
		{"duplicate", []Spec{{Name: "a"}, {Name: "a"}}},
		{"negative rate", []Spec{{Name: "a", Rate: -1}}},
		{"nan burst", []Spec{{Name: "a", Burst: math.NaN()}}},
		{"share above 1", []Spec{{Name: "a", Share: 1.5}}},
		{"bad class", []Spec{{Name: "a", Class: "platinum"}}},
	} {
		if _, err := New(tc.specs); err == nil {
			t.Fatalf("%s: New accepted %+v", tc.name, tc.specs)
		}
	}
}

func TestSharesAndAdmittedRate(t *testing.T) {
	specs := []Spec{{Name: "a", Share: 0.6}, {Name: "b", Share: 0.2}, {Name: "*"}}
	sh := Shares(specs)
	if math.Abs(sh[0]-0.75) > 1e-12 || math.Abs(sh[1]-0.25) > 1e-12 || sh[2] != 0 {
		t.Fatalf("normalized shares = %v", sh)
	}
	even := Shares([]Spec{{Name: "a"}, {Name: "b"}})
	if even[0] != 0.5 || even[1] != 0.5 {
		t.Fatalf("even split = %v", even)
	}
	lim := Spec{Name: "a", Rate: 100}
	if got := lim.AdmittedRate(250); got != 100 {
		t.Fatalf("limited AdmittedRate = %v", got)
	}
	if got := lim.AdmittedRate(40); got != 40 {
		t.Fatalf("under-quota AdmittedRate = %v", got)
	}
	gold := Spec{Name: "g", Class: ClassGold, Rate: 100}
	if got := gold.AdmittedRate(250); got != 250 {
		t.Fatalf("gold AdmittedRate = %v", got)
	}
}

func TestSnapshotsAndString(t *testing.T) {
	l, err := New([]Spec{
		{Name: "acme", Rate: 100, Burst: 10, ByteRate: 1000, ByteBurst: 1000, Share: 0.5},
		{Name: "vip", Class: ClassGold},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := l.Lookup("acme")
	for i := 0; i < 15; i++ {
		a.Admit(0, 1, 10)
	}
	a.Observe(0.001)
	a.Observe(0.002)
	l.FromKey([]byte("stray")).Admit(0, 1, 0) // wake the catch-all
	snaps := l.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("want declared + active catch-all, got %d", len(snaps))
	}
	SortSnapshots(snaps)
	if snaps[0].Name != DefaultName || snaps[1].Name != "acme" || snaps[2].Name != "vip" {
		t.Fatalf("sorted order wrong: %v %v %v", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
	acme := snaps[1]
	if acme.Admitted != 10 || acme.Shed != 5 {
		t.Fatalf("acme admitted=%d shed=%d, want 10/5", acme.Admitted, acme.Shed)
	}
	if acme.AdmBytes != 100 || acme.ShedBytes != 50 {
		t.Fatalf("acme bytes %d/%d", acme.AdmBytes, acme.ShedBytes)
	}
	if h := a.Latency(); h.Count() != 2 {
		t.Fatalf("latency count = %d", h.Count())
	}
	s := l.String()
	for _, want := range []string{"acme:class=silver,rate=100,burst=10", "byterate=1000", "share=0.5", "vip:class=gold"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// TestConcurrentAdmit is the -race stress: many goroutines hammer every
// tenant through the shared map while a scraper snapshots. Counter
// conservation (admitted + shed == issued) must hold exactly.
func TestConcurrentAdmit(t *testing.T) {
	l, err := New([]Spec{
		{Name: "acme", Rate: 1e6, Burst: 100},
		{Name: "evil", Rate: 10, Burst: 1},
		{Name: "vip", Class: ClassGold},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const perWorker = 2000
	keys := [][]byte{[]byte("acme:1"), []byte("evil:1"), []byte("vip:1"), []byte("stray:1")}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := dist.SubRand(uint64(w), 9)
			for i := 0; i < perWorker; i++ {
				tn := l.FromKey(keys[rng.IntN(len(keys))])
				if tn.Admit(float64(i)/1000, 1, 8) {
					tn.Observe(0.0001)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, s := range l.Snapshots() {
				_ = s.Tokens
			}
		}
	}()
	wg.Wait()
	<-done
	var total int64
	for _, s := range l.Snapshots() {
		total += s.Admitted + s.Shed
	}
	if total != workers*perWorker {
		t.Fatalf("admitted+shed = %d, want %d", total, workers*perWorker)
	}
}

func BenchmarkAdmit(b *testing.B) {
	l, err := New([]Spec{{Name: "acme", Rate: 1e9, Burst: 1e6}})
	if err != nil {
		b.Fatal(err)
	}
	key := []byte("acme:user:12345")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.FromKey(key).Admit(float64(i)*1e-6, 1, 0)
	}
}

func ExampleParseSpecs() {
	specs, _ := ParseSpecs("acme:class=gold,rate=500;evil:rate=200,share=1")
	for _, s := range specs {
		fmt.Println(s.Name, s.Class, s.Rate)
	}
	// Output:
	// acme gold 500
	// evil  200
}
