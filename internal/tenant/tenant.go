// Package tenant is the multi-tenant QoS layer: tenants are extracted
// from a key prefix ("acme:user17" belongs to tenant "acme"), and each
// tenant owns a deterministic token bucket for op and byte quotas plus
// a priority class that decides what happens when the bucket runs dry.
//
// The bucket math is a pure function of the (now, ops, bytes) call
// sequence — time is an explicit argument, never sampled inside — so
// the exact same limiter runs on the composition sim's virtual clock
// and on the live plane's wall clock (fault.Clock seconds) and makes
// identical admit/shed decisions for identical arrival sequences.
// That is what lets the model plane price shed traffic out of λ and
// still agree with the live proxy.
//
// Classes:
//
//	gold   — guaranteed: the bucket meters usage but never sheds.
//	silver — (default) shed-before-queue once the bucket is empty.
//	bronze — silver without burst headroom: the bucket caps at a
//	         single op's worth, smoothing bronze tenants to their
//	         sustained rate.
package tenant

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"memqlat/internal/stats"
)

// Tenant classes. The class decides shed behavior, not routing.
const (
	ClassGold   = "gold"
	ClassSilver = "silver"
	ClassBronze = "bronze"
)

// DefaultName is the catch-all tenant that owns every key without a
// declared prefix. It is unlimited unless a Spec named "*" overrides
// it.
const DefaultName = "*"

// ShedMsg is the reply-line body a proxy sends for a shed command; the
// client surfaces it as *protocol.ServerError and loadgen classifies
// sheds by matching it.
const ShedMsg = "SERVER_ERROR tenant over quota"

// Spec declares one tenant.
type Spec struct {
	// Name is the key prefix (keys "name:..." belong to this tenant).
	// "*" configures the catch-all tenant for unprefixed keys.
	Name string
	// Class is gold, silver or bronze (default silver).
	Class string
	// Rate is the sustained op (key) budget per second; 0 = unlimited.
	Rate float64
	// Burst is the op bucket depth (default Rate/50, floored at 1 —
	// 20 ms of headroom). Bronze tenants are clamped to 1.
	Burst float64
	// ByteRate / ByteBurst quota stored bytes per second; 0 = unlimited.
	ByteRate  float64
	ByteBurst float64
	// Share is this tenant's fraction of offered load in generated
	// mixes (model pricing, sim draws, loadgen). Shares normalize over
	// the declared tenants; all zero means an even split.
	Share float64
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Name == "" {
		return s, fmt.Errorf("tenant: empty tenant name")
	}
	if strings.ContainsAny(s.Name, ":,;= \t\r\n") {
		return s, fmt.Errorf("tenant: name %q contains reserved characters", s.Name)
	}
	switch s.Class {
	case "":
		s.Class = ClassSilver
	case ClassGold, ClassSilver, ClassBronze:
	default:
		return s, fmt.Errorf("tenant: unknown class %q (known: gold, silver, bronze)", s.Class)
	}
	for _, v := range []struct {
		name string
		v    float64
	}{{"rate", s.Rate}, {"burst", s.Burst}, {"byterate", s.ByteRate}, {"byteburst", s.ByteBurst}} {
		if v.v < 0 || math.IsNaN(v.v) || math.IsInf(v.v, 0) {
			return s, fmt.Errorf("tenant: %s: %s %v out of range", s.Name, v.name, v.v)
		}
	}
	if s.Share < 0 || s.Share > 1 || math.IsNaN(s.Share) {
		return s, fmt.Errorf("tenant: %s: share %v out of [0,1]", s.Name, s.Share)
	}
	if s.Burst <= 0 {
		s.Burst = math.Max(1, s.Rate/50)
	}
	if s.Class == ClassBronze {
		s.Burst = math.Min(s.Burst, 1)
	}
	if s.ByteRate > 0 && s.ByteBurst <= 0 {
		s.ByteBurst = math.Max(1, s.ByteRate/50)
	}
	return s, nil
}

// limited reports whether the spec's bucket ever sheds.
func (s Spec) limited() bool {
	return s.Class != ClassGold && (s.Rate > 0 || s.ByteRate > 0)
}

// AdmittedRate is the model plane's pricing of one tenant: the rate the
// bucket sustains out of offered ops/s. Gold and unlimited tenants pass
// through; limited tenants clip at Rate.
func (s Spec) AdmittedRate(offered float64) float64 {
	if s.Class == ClassGold || s.Rate <= 0 {
		return offered
	}
	return math.Min(offered, s.Rate)
}

// ParseSpecs parses the CLI/config form: semicolon-separated
// "name:key=value,..." entries, e.g.
//
//	acme:class=gold,rate=500,burst=50,share=0.5;evil:rate=200,share=0.5
//
// Keys: class, rate, burst, byterate, byteburst, share. A bare "name"
// declares an unlimited tracked tenant.
func ParseSpecs(s string) ([]Spec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var specs []Spec
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var sp Spec
		name, opts, hasOpts := strings.Cut(entry, ":")
		sp.Name = strings.TrimSpace(name)
		if hasOpts {
			for _, kv := range strings.Split(opts, ",") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("tenant: %s: %q is not key=value", sp.Name, kv)
				}
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				if k == "class" {
					sp.Class = v
					continue
				}
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("tenant: %s: %s=%q: %v", sp.Name, k, v, err)
				}
				switch k {
				case "rate":
					sp.Rate = f
				case "burst":
					sp.Burst = f
				case "byterate":
					sp.ByteRate = f
				case "byteburst":
					sp.ByteBurst = f
				case "share":
					sp.Share = f
				default:
					return nil, fmt.Errorf("tenant: %s: unknown option %q", sp.Name, k)
				}
			}
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// Shares returns the declared specs' normalized offered-load shares:
// they sum to 1, with an even split when every Share is zero. Specs
// named "*" (the catch-all) are excluded from generated mixes and get
// share 0.
func Shares(specs []Spec) []float64 {
	out := make([]float64, len(specs))
	sum, n := 0.0, 0
	for i, sp := range specs {
		if sp.Name == DefaultName {
			continue
		}
		out[i] = sp.Share
		sum += sp.Share
		n++
	}
	for i, sp := range specs {
		if sp.Name == DefaultName {
			continue
		}
		if sum > 0 {
			out[i] /= sum
		} else if n > 0 {
			out[i] = 1 / float64(n)
		}
	}
	return out
}

// Tenant is one tenant's live state: the token buckets, counters and a
// latency histogram. All methods are safe for concurrent use; the
// bucket itself is deterministic given the call sequence.
type Tenant struct {
	spec Spec

	mu         sync.Mutex
	tokens     float64
	byteTokens float64
	last       float64
	started    bool // first non-negative now seen
	admitted   int64
	shed       int64
	admBytes   int64
	shedBytes  int64
	lat        *stats.Histogram
}

func newTenant(sp Spec) *Tenant {
	return &Tenant{
		spec:       sp,
		tokens:     sp.Burst,
		byteTokens: sp.ByteBurst,
		lat:        stats.NewHistogram(),
	}
}

// Name returns the tenant's key prefix.
func (t *Tenant) Name() string { return t.spec.Name }

// Class returns the tenant's priority class.
func (t *Tenant) Class() string { return t.spec.Class }

// Spec returns the declared (defaulted) spec.
func (t *Tenant) Spec() Spec { return t.spec }

// Admit decides whether ops keys totalling nbytes stored bytes may pass
// at time now (seconds on the run clock; virtual or wall). A negative
// or -Inf now means the run clock has not started (fault.Clock before
// Start): everything is admitted unmetered so cache population runs
// unthrottled and every plane starts throttling at the same epoch with
// full buckets.
//
// Gold tenants always admit (the bucket only meters). Silver and
// bronze shed — without queuing — when either bucket cannot cover the
// charge.
func (t *Tenant) Admit(now float64, ops, nbytes int) bool {
	if ops <= 0 {
		ops = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if now < 0 {
		t.admitted += int64(ops)
		t.admBytes += int64(nbytes)
		return true
	}
	if !t.started {
		// First observation on a started clock: the bucket was filled
		// at the epoch, so refill from 0, not from a stale wall offset.
		t.started = true
		t.last = 0
	}
	if now > t.last {
		dt := now - t.last
		t.tokens = math.Min(t.spec.Burst, t.tokens+dt*t.spec.Rate)
		t.byteTokens = math.Min(t.spec.ByteBurst, t.byteTokens+dt*t.spec.ByteRate)
		t.last = now
	}
	opCost, byteCost := float64(ops), float64(nbytes)
	if t.spec.limited() {
		short := (t.spec.Rate > 0 && t.tokens < opCost) ||
			(t.spec.ByteRate > 0 && t.byteTokens < byteCost)
		if short {
			t.shed += int64(ops)
			t.shedBytes += int64(nbytes)
			return false
		}
	}
	if t.spec.Rate > 0 {
		t.tokens = math.Max(0, t.tokens-opCost)
	}
	if t.spec.ByteRate > 0 {
		t.byteTokens = math.Max(0, t.byteTokens-byteCost)
	}
	t.admitted += int64(ops)
	t.admBytes += int64(nbytes)
	return true
}

// Observe records one admitted command's latency (seconds).
func (t *Tenant) Observe(sec float64) {
	t.mu.Lock()
	t.lat.Record(sec)
	t.mu.Unlock()
}

// Snapshot is a point-in-time copy of a tenant's counters.
type Snapshot struct {
	Name       string
	Class      string
	Rate       float64
	Burst      float64
	ByteRate   float64
	ByteBurst  float64
	Share      float64
	Tokens     float64
	ByteTokens float64
	Admitted   int64
	Shed       int64
	AdmBytes   int64
	ShedBytes  int64
}

// Snapshot copies the counters and current bucket levels.
func (t *Tenant) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Snapshot{
		Name:       t.spec.Name,
		Class:      t.spec.Class,
		Rate:       t.spec.Rate,
		Burst:      t.spec.Burst,
		ByteRate:   t.spec.ByteRate,
		ByteBurst:  t.spec.ByteBurst,
		Share:      t.spec.Share,
		Tokens:     t.tokens,
		ByteTokens: t.byteTokens,
		Admitted:   t.admitted,
		Shed:       t.shed,
		AdmBytes:   t.admBytes,
		ShedBytes:  t.shedBytes,
	}
}

// Latency clones the tenant's latency histogram.
func (t *Tenant) Latency() *stats.Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lat.Clone()
}

// Limiter maps keys to tenants and holds their buckets. The tenant map
// is immutable after New, so FromKey is a lock-free read; per-tenant
// state locks independently.
type Limiter struct {
	byName map[string]*Tenant
	order  []*Tenant // declared order, catch-all excluded unless declared
	def    *Tenant
}

// New validates specs and builds a limiter. Duplicate names are
// rejected; a spec named "*" overrides the implicit unlimited
// catch-all for unprefixed keys.
func New(specs []Spec) (*Limiter, error) {
	l := &Limiter{byName: make(map[string]*Tenant, len(specs)+1)}
	for _, sp := range specs {
		sp, err := sp.withDefaults()
		if err != nil {
			return nil, err
		}
		if _, dup := l.byName[sp.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant %q", sp.Name)
		}
		t := newTenant(sp)
		l.byName[sp.Name] = t
		l.order = append(l.order, t)
		if sp.Name == DefaultName {
			l.def = t
		}
	}
	if l.def == nil {
		def, err := Spec{Name: DefaultName, Class: ClassGold}.withDefaults()
		if err != nil {
			return nil, err
		}
		l.def = newTenant(def)
		l.byName[DefaultName] = l.def
	}
	return l, nil
}

// FromKey resolves the owning tenant of a key: the declared tenant
// whose name matches the prefix before the first ':', else the
// catch-all. Zero-alloc on the hot path.
func (l *Limiter) FromKey(key []byte) *Tenant {
	i := bytes.IndexByte(key, ':')
	if i <= 0 {
		return l.def
	}
	if t, ok := l.byName[string(key[:i])]; ok {
		return t
	}
	return l.def
}

// Lookup resolves a tenant by name (nil when undeclared).
func (l *Limiter) Lookup(name string) *Tenant { return l.byName[name] }

// Default returns the catch-all tenant.
func (l *Limiter) Default() *Tenant { return l.def }

// Tenants returns the declared tenants in declaration order.
func (l *Limiter) Tenants() []*Tenant { return l.order }

// Snapshots returns per-tenant snapshots: declared tenants in order,
// then the implicit catch-all if it saw any traffic.
func (l *Limiter) Snapshots() []Snapshot {
	out := make([]Snapshot, 0, len(l.order)+1)
	declaredDefault := false
	for _, t := range l.order {
		if t == l.def {
			declaredDefault = true
		}
		out = append(out, t.Snapshot())
	}
	if !declaredDefault {
		if s := l.def.Snapshot(); s.Admitted > 0 || s.Shed > 0 {
			out = append(out, s)
		}
	}
	return out
}

// String renders the limiter's declared specs back in ParseSpecs form
// (diagnostics, stats rows).
func (l *Limiter) String() string {
	var b strings.Builder
	for i, t := range l.order {
		if i > 0 {
			b.WriteByte(';')
		}
		sp := t.spec
		fmt.Fprintf(&b, "%s:class=%s", sp.Name, sp.Class)
		if sp.Rate > 0 {
			fmt.Fprintf(&b, ",rate=%g,burst=%g", sp.Rate, sp.Burst)
		}
		if sp.ByteRate > 0 {
			fmt.Fprintf(&b, ",byterate=%g,byteburst=%g", sp.ByteRate, sp.ByteBurst)
		}
		if sp.Share > 0 {
			fmt.Fprintf(&b, ",share=%g", sp.Share)
		}
	}
	return b.String()
}

// SortSnapshots orders snapshots by name (stable output for logs and
// tests that aggregate over concurrent sources).
func SortSnapshots(ss []Snapshot) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Name < ss[j].Name })
}
