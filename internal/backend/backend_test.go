package backend

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{MuD: -1}); err == nil {
		t.Error("negative MuD accepted")
	}
	if _, err := New(Options{QueueDepth: -1}); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := New(Options{ValueSize: -1}); err == nil {
		t.Error("negative value size accepted")
	}
	db, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
}

func TestGetReturnsDeterministicValue(t *testing.T) {
	db, err := New(Options{MuD: 1e7, ValueSize: 32}) // ~0.1µs service
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	v1, err := db.Get(context.Background(), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := db.Get(context.Background(), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1, v2) {
		t.Error("same key, different values")
	}
	if len(v1) != 32 {
		t.Errorf("value size = %d", len(v1))
	}
	v3, _ := db.Get(context.Background(), "key-2")
	if bytes.Equal(v1, v3) {
		t.Error("different keys, same value")
	}
}

func TestGetEmptyKey(t *testing.T) {
	db, _ := New(Options{MuD: 1e7})
	defer db.Close()
	if _, err := db.Get(context.Background(), ""); err == nil {
		t.Error("empty key accepted")
	}
}

func TestGetDelayApproximatesMean(t *testing.T) {
	// MuD = 2000/s -> mean 500µs; average over 50 lookups should be in
	// the right ballpark despite sleep granularity.
	db, err := New(Options{MuD: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	start := time.Now()
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := db.Get(context.Background(), "k"); err != nil {
			t.Fatal(err)
		}
	}
	mean := time.Since(start) / n
	if mean < 200*time.Microsecond || mean > 5*time.Millisecond {
		t.Errorf("mean lookup latency = %v, want ~500µs", mean)
	}
	if db.Stats().Lookups != n {
		t.Errorf("lookups = %d", db.Stats().Lookups)
	}
}

func TestGetContextCancel(t *testing.T) {
	db, _ := New(Options{MuD: 0.1}) // 10s mean service: must cancel
	defer db.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := db.Get(ctx, "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
}

func TestSingleQueueOverload(t *testing.T) {
	db, err := New(Options{MuD: 1, Mode: ModeSingleQueue, QueueDepth: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Fire lookups without waiting: the 1-deep queue must overflow.
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			_, err := db.Get(ctx, "k")
			errs <- err
		}()
	}
	overloaded := 0
	for i := 0; i < 8; i++ {
		if errors.Is(<-errs, ErrOverloaded) {
			overloaded++
		}
	}
	if overloaded == 0 {
		t.Error("no overload errors from a saturated 1-deep queue")
	}
	if db.Stats().Dropped == 0 {
		t.Error("dropped counter not incremented")
	}
}

func TestSingleQueuePeakDepth(t *testing.T) {
	// Slow service (1/s) so enqueued jobs pile up behind the first.
	db, err := New(Options{MuD: 1, Mode: ModeSingleQueue, QueueDepth: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if st := db.Stats(); st.QueuePeak != 0 || st.QueueDepth != 0 {
		t.Fatalf("idle stats = %+v, want zero queue gauges", st)
	}
	done := make(chan struct{})
	for i := 0; i < 6; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			_, _ = db.Get(ctx, "k")
			done <- struct{}{}
		}()
	}
	for i := 0; i < 6; i++ {
		<-done
	}
	st := db.Stats()
	if st.QueuePeak < 3 {
		t.Errorf("queue peak = %d after 6 concurrent lookups at 1/s service, want >= 3", st.QueuePeak)
	}
	if st.QueuePeak > 16 {
		t.Errorf("queue peak = %d exceeds the queue capacity", st.QueuePeak)
	}
}

func TestConcurrentModeNoQueueGauges(t *testing.T) {
	db, err := New(Options{MuD: 1e6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Get(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.QueueDepth != 0 || st.QueuePeak != 0 {
		t.Errorf("concurrent-mode stats = %+v, want zero queue gauges", st)
	}
}

func TestSingleQueueServesInOrder(t *testing.T) {
	db, err := New(Options{MuD: 1e6, Mode: ModeSingleQueue, QueueDepth: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 20; i++ {
		if _, err := db.Get(context.Background(), "k"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClose(t *testing.T) {
	db, _ := New(Options{MuD: 1e6, Mode: ModeSingleQueue})
	db.Close()
	db.Close() // idempotent
	if _, err := db.Get(context.Background(), "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
}
