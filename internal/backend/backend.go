// Package backend simulates the back-end database of the Memcached
// architecture (paper Fig. 1): the store of record that missed keys are
// relayed to. Per the paper's §4.4 model it services each lookup with
// an exponential delay of mean 1/µ_D; two disciplines are provided —
// the model's effectively-unqueued stage (ρ_D ≈ 0) and a bounded
// single-queue server for overload experiments.
package backend

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"memqlat/internal/dist"
	"memqlat/internal/fault"
	"memqlat/internal/otrace"
	"memqlat/internal/telemetry"
)

// Mode selects the service discipline.
type Mode int

const (
	// ModeInfiniteServer delays each lookup independently — the paper's
	// ρ_D ≈ 0 database stage (default).
	ModeInfiniteServer Mode = iota + 1
	// ModeSingleQueue serializes lookups through one worker with a
	// bounded queue; overflow returns ErrOverloaded.
	ModeSingleQueue
)

// ErrOverloaded reports a full single-queue backend.
var ErrOverloaded = errors.New("backend: queue full")

// ErrClosed reports use after Close.
var ErrClosed = errors.New("backend: closed")

// ErrInjected reports a lookup failed by the fault injector (a database
// outage window).
var ErrInjected = errors.New("backend: injected fault")

// Options configures a DB.
type Options struct {
	// MuD is the service rate (lookups per second, default 1000).
	MuD float64
	// Mode selects the discipline (default ModeInfiniteServer).
	Mode Mode
	// QueueDepth bounds the single-queue backlog (default 1024).
	QueueDepth int
	// Seed makes delays deterministic.
	Seed uint64
	// ValueSize is the size of synthesized values (default 100 bytes).
	ValueSize int
	// Recorder, when set, receives a StageMissPenalty observation for
	// every completed lookup (the live plane's database-stage latency).
	Recorder telemetry.Recorder
	// Fault, when set, injects database-side faults (target
	// fault.Database): slow/stall windows delay lookups, other outcomes
	// fail them with ErrInjected. Nil = healthy.
	Fault *fault.Point
	// Tracer, when set, emits a span per lookup whose context carries a
	// trace (otrace.FromContext) — the miss-penalty leg of a traced
	// request. Nil disables tracing.
	Tracer *otrace.Tracer
}

// DB is the simulated database. Lookups never miss: the database is the
// store of record, so any key has a deterministically synthesized value.
type DB struct {
	muD       float64
	mode      Mode
	valueSize int
	rec       telemetry.Recorder
	fp        *fault.Point
	tracer    *otrace.Tracer

	mu  sync.Mutex
	rng *rand.Rand

	queue   chan *job
	done    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
	lookups atomic.Int64
	dropped atomic.Int64
	// queuePeak is the single-queue backlog high-watermark (see Stats).
	queuePeak atomic.Int64
}

type job struct {
	service time.Duration
	ready   chan struct{}
}

// New constructs a DB.
func New(opts Options) (*DB, error) {
	if opts.MuD == 0 {
		opts.MuD = 1000
	}
	if !(opts.MuD > 0) {
		return nil, fmt.Errorf("backend: MuD=%v must be positive", opts.MuD)
	}
	if opts.Mode == 0 {
		opts.Mode = ModeInfiniteServer
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 1024
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("backend: QueueDepth=%d must be positive", opts.QueueDepth)
	}
	if opts.ValueSize == 0 {
		opts.ValueSize = 100
	}
	if opts.ValueSize < 0 {
		return nil, fmt.Errorf("backend: ValueSize=%d must be positive", opts.ValueSize)
	}
	db := &DB{
		muD:       opts.MuD,
		mode:      opts.Mode,
		valueSize: opts.ValueSize,
		rec:       telemetry.OrNop(opts.Recorder),
		fp:        opts.Fault,
		tracer:    opts.Tracer,
		rng:       dist.SubRand(opts.Seed, 0xdb),
		done:      make(chan struct{}),
	}
	if opts.Mode == ModeSingleQueue {
		db.queue = make(chan *job, opts.QueueDepth)
		db.wg.Add(1)
		go db.worker()
	}
	return db, nil
}

func (db *DB) worker() {
	defer db.wg.Done()
	for {
		select {
		case j := <-db.queue:
			time.Sleep(j.service)
			close(j.ready)
		case <-db.done:
			// Drain pending jobs so callers unblock.
			for {
				select {
				case j := <-db.queue:
					close(j.ready)
				default:
					return
				}
			}
		}
	}
}

// serviceTime draws an exponential delay.
func (db *DB) serviceTime() time.Duration {
	db.mu.Lock()
	defer db.mu.Unlock()
	return time.Duration(db.rng.ExpFloat64() / db.muD * float64(time.Second))
}

// Get fetches the value of key, experiencing the modeled service delay.
// It honors ctx cancellation while waiting.
func (db *DB) Get(ctx context.Context, key string) ([]byte, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if key == "" {
		return nil, fmt.Errorf("backend: empty key")
	}
	db.lookups.Add(1)
	// A traced caller hands its context over via otrace.ContextWith; the
	// lookup span covers queueing (single-queue mode) plus service.
	sp := otrace.Span{}
	if tc := otrace.FromContext(ctx); tc.Valid() {
		sp = db.tracer.Begin(tc, "backend", "lookup", 0)
	}
	began := time.Now()
	service := db.serviceTime()
	if act := db.fp.Eval(); act.Faulted() {
		if d := time.Duration(act.Delay * float64(time.Second)); d > 0 {
			timer := time.NewTimer(d)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if act.Outcome != fault.OK {
			return nil, ErrInjected
		}
	}
	switch db.mode {
	case ModeSingleQueue:
		j := &job{service: service, ready: make(chan struct{})}
		select {
		case db.queue <- j:
			// Track the backlog high-watermark at enqueue: the depth
			// including this job, raised with a CAS loop so concurrent
			// enqueues never lower it. This is the direct backend-pressure
			// signal the coalesced-vs-naive experiment reports — drops
			// only show pressure after the queue is already lost.
			depth := int64(len(db.queue))
			for {
				peak := db.queuePeak.Load()
				if depth <= peak || db.queuePeak.CompareAndSwap(peak, depth) {
					break
				}
			}
		default:
			db.dropped.Add(1)
			return nil, ErrOverloaded
		}
		select {
		case <-j.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	default:
		timer := time.NewTimer(service)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	db.rec.Observe(telemetry.StageMissPenalty, time.Since(began).Seconds())
	db.tracer.End(sp)
	return db.ValueFor(key), nil
}

// ValueFor deterministically synthesizes the record for key (no delay) —
// the content a real database would hold.
func (db *DB) ValueFor(key string) []byte {
	out := make([]byte, db.valueSize)
	// Simple key-dependent fill so distinct keys are distinguishable.
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	for i := range out {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		out[i] = 'a' + byte(h%26)
	}
	return out
}

// Stats reports lookup counters.
type Stats struct {
	Lookups int64
	Dropped int64
	// QueueDepth is the current single-queue backlog; QueuePeak its
	// high-watermark since start. Both zero in concurrent mode.
	QueueDepth int64
	QueuePeak  int64
}

// Stats snapshots counters.
func (db *DB) Stats() Stats {
	s := Stats{Lookups: db.lookups.Load(), Dropped: db.dropped.Load()}
	if db.mode == ModeSingleQueue {
		s.QueueDepth = int64(len(db.queue))
		s.QueuePeak = db.queuePeak.Load()
	}
	return s
}

// Close stops the worker (single-queue mode) and fails future lookups.
func (db *DB) Close() {
	if db.closed.Swap(true) {
		return
	}
	close(db.done)
	db.wg.Wait()
}
