// Package fault is the deterministic fault-injection seam shared by the
// live TCP stack (internal/server, internal/backend) and the simulators
// (internal/sim). A Schedule is a list of Rules — per-server slowdowns,
// stalls, connection resets/refusals, probabilistic drops, and flap
// cycles, each active in a time window — and an Injector evaluates the
// schedule against a clock. Because every probabilistic decision is a
// pure hash of (seed, target, per-target query counter), the same
// schedule walked with the same query sequence yields bit-identical
// fault decisions on every plane: the sim plane asks in virtual time,
// the live plane in wall time since Clock.Start, and both see the same
// injected sequence. That is what lets crossplane put "healthy",
// "sim-under-fault" and "live-under-fault" in one table.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Special Rule.Server targets.
const (
	// AllServers targets every Memcached server (not the database).
	AllServers = -1
	// Database targets the back-end database instead of a cache server.
	Database = -2
)

// Kind enumerates the fault-point taxonomy.
type Kind int

const (
	// KindSlow adds Delay to every operation in the window — a browned-out
	// server (slow NIC, CPU contention, noisy neighbor).
	KindSlow Kind = iota + 1
	// KindStall holds every operation arriving in the window until the
	// window ends — a GC pause / packet blackhole that later drains.
	KindStall
	// KindDrop swallows the request with probability P: the server does
	// the work but the reply is lost, so the client eats its op timeout.
	KindDrop
	// KindReset closes the connection mid-operation — a crashed process
	// or an RST-ing middlebox.
	KindReset
	// KindRefuse rejects new connections and fails operations fast — a
	// dead or not-yet-listening server.
	KindRefuse
	// KindFlap alternates Refuse-down and healthy-up phases of Period
	// seconds with down fraction Duty — a crash-looping server.
	KindFlap
)

// String returns the schedule-spec keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindSlow:
		return "slow"
	case KindStall:
		return "stall"
	case KindDrop:
		return "drop"
	case KindReset:
		return "reset"
	case KindRefuse:
		return "refuse"
	case KindFlap:
		return "flap"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule is one fault point: a kind, a target, a time window, and the
// kind's parameters. The zero Until means "until the end of the run".
type Rule struct {
	// Server is the target: a cache-server index, AllServers, or Database.
	Server int
	// Kind selects the fault behavior.
	Kind Kind
	// From / Until bound the active window in seconds from the run epoch
	// (Clock.Start on the live plane, stream start in the simulators).
	From, Until float64
	// Delay is the added latency in seconds (KindSlow), and for KindDrop
	// the latency at which the loss surfaces to the caller in the
	// simulators (a stand-in for the client's op timeout; the live plane
	// needs no stand-in — the client really times out).
	Delay float64
	// P is the per-operation probability for slow/stall/drop/reset
	// rules (default 1 = every operation). Refuse and flap ignore it:
	// the accept loop needs a counter-free decision, so their windows
	// are all-or-nothing.
	P float64
	// Period / Duty parameterize KindFlap: each Period seconds the server
	// is down for the first Duty fraction (default Duty 0.5).
	Period, Duty float64
}

// active reports whether the rule's window covers now (and, for flap
// rules, whether now falls in the down phase).
func (r Rule) active(now float64) bool {
	if math.IsInf(now, -1) || now < r.From {
		return false
	}
	if r.Until > 0 && now >= r.Until {
		return false
	}
	if r.Kind == KindFlap {
		period := r.Period
		if period <= 0 {
			return false
		}
		duty := r.Duty
		if duty <= 0 {
			duty = 0.5
		}
		phase := math.Mod(now-r.From, period)
		return phase < duty*period
	}
	return true
}

// matches reports whether the rule targets server.
func (r Rule) matches(server int) bool {
	if r.Server == AllServers {
		return server >= 0
	}
	return r.Server == server
}

// Validate checks the rule's parameters.
func (r Rule) Validate() error {
	if r.Server < Database {
		return fmt.Errorf("fault: server %d out of range", r.Server)
	}
	switch r.Kind {
	case KindSlow:
		if r.Delay <= 0 {
			return fmt.Errorf("fault: slow rule needs delay > 0")
		}
	case KindStall:
		if r.Until <= r.From {
			return fmt.Errorf("fault: stall rule needs until > from")
		}
	case KindDrop:
		if r.P < 0 || r.P > 1 {
			return fmt.Errorf("fault: drop p=%v out of [0,1]", r.P)
		}
	case KindReset, KindRefuse:
	case KindFlap:
		if r.Period <= 0 {
			return fmt.Errorf("fault: flap rule needs period > 0")
		}
		if r.Duty < 0 || r.Duty > 1 {
			return fmt.Errorf("fault: flap duty=%v out of [0,1]", r.Duty)
		}
	default:
		return fmt.Errorf("fault: unknown kind %d", int(r.Kind))
	}
	if r.From < 0 || r.Delay < 0 {
		return fmt.Errorf("fault: negative from/delay")
	}
	if r.Until < 0 {
		return fmt.Errorf("fault: negative until")
	}
	return nil
}

// String renders the rule in schedule-spec syntax.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Kind.String())
	switch r.Server {
	case AllServers:
		b.WriteString(":srv=all")
	case Database:
		b.WriteString(":srv=db")
	default:
		fmt.Fprintf(&b, ":srv=%d", r.Server)
	}
	if r.From > 0 {
		fmt.Fprintf(&b, ",from=%gs", r.From)
	}
	if r.Until > 0 {
		fmt.Fprintf(&b, ",until=%gs", r.Until)
	}
	if r.Delay > 0 {
		fmt.Fprintf(&b, ",delay=%gs", r.Delay)
	}
	if r.Kind == KindDrop && r.P > 0 && r.P != 1 {
		fmt.Fprintf(&b, ",p=%g", r.P)
	}
	if r.Kind == KindFlap {
		fmt.Fprintf(&b, ",period=%gs", r.Period)
		if r.Duty > 0 {
			fmt.Fprintf(&b, ",duty=%g", r.Duty)
		}
	}
	return b.String()
}

// Schedule is a seeded set of fault points — the unit a Scenario
// carries. The zero value is the healthy schedule.
type Schedule struct {
	// Rules lists the fault points (evaluated in order).
	Rules []Rule
	// Seed roots the probabilistic decisions (KindDrop); two injectors
	// built from equal schedules make identical decisions.
	Seed uint64
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Rules) == 0 }

// Validate checks every rule.
func (s Schedule) Validate() error {
	for i, r := range s.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d (%s): %w", i, r, err)
		}
	}
	return nil
}

// String renders the schedule in spec syntax (semicolon-separated).
func (s Schedule) String() string {
	parts := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// ParseSchedule parses the CLI spec syntax: semicolon-separated rules,
// each "kind:key=value,...". Keys: srv (index, "all" or "db"), from,
// until, delay (durations like 100ms or 5s), p, period, duty.
//
//	stall:srv=1,from=5s,until=10s
//	slow:srv=all,delay=200us;drop:srv=0,p=0.3,delay=50ms
//	flap:srv=2,period=2s,duty=0.5
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return Schedule{}, fmt.Errorf("fault: rule %q: %w", part, err)
		}
		s.Rules = append(s.Rules, r)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

func parseRule(part string) (Rule, error) {
	head, rest, _ := strings.Cut(part, ":")
	r := Rule{Server: AllServers, P: 1}
	switch head {
	case "slow":
		r.Kind = KindSlow
	case "stall":
		r.Kind = KindStall
	case "drop":
		r.Kind = KindDrop
	case "reset":
		r.Kind = KindReset
	case "refuse":
		r.Kind = KindRefuse
	case "flap":
		r.Kind = KindFlap
	default:
		return r, fmt.Errorf("unknown kind %q", head)
	}
	if rest == "" {
		return r, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return r, fmt.Errorf("malformed parameter %q", kv)
		}
		var err error
		switch k {
		case "srv":
			switch v {
			case "all":
				r.Server = AllServers
			case "db":
				r.Server = Database
			default:
				r.Server, err = strconv.Atoi(v)
			}
		case "from":
			r.From, err = parseSeconds(v)
		case "until":
			r.Until, err = parseSeconds(v)
		case "delay":
			r.Delay, err = parseSeconds(v)
		case "p":
			r.P, err = strconv.ParseFloat(v, 64)
		case "period":
			r.Period, err = parseSeconds(v)
		case "duty":
			r.Duty, err = strconv.ParseFloat(v, 64)
		default:
			return r, fmt.Errorf("unknown parameter %q", k)
		}
		if err != nil {
			return r, fmt.Errorf("parameter %q: %w", kv, err)
		}
	}
	return r, nil
}

// parseSeconds accepts Go durations ("100ms") or bare seconds ("5").
func parseSeconds(v string) (float64, error) {
	if d, err := time.ParseDuration(v); err == nil {
		return d.Seconds(), nil
	}
	return strconv.ParseFloat(v, 64)
}

// Outcome classifies what the injected fault does to one operation.
type Outcome int

const (
	// OK: the operation proceeds (possibly after Action.Delay).
	OK Outcome = iota
	// Drop: the reply is lost; the caller perceives a timeout.
	Drop
	// Reset: the connection is torn down mid-operation.
	Reset
	// Refuse: the server rejects the operation/connection immediately.
	Refuse
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Drop:
		return "drop"
	case Reset:
		return "reset"
	case Refuse:
		return "refuse"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Action is the injector's verdict for one operation.
type Action struct {
	// Delay is extra latency in seconds applied before Outcome.
	Delay float64
	// Outcome is what happens after the delay.
	Outcome Outcome
}

// Faulted reports whether the action perturbs the operation at all.
func (a Action) Faulted() bool { return a.Delay > 0 || a.Outcome != OK }

// Injector evaluates a Schedule. It is safe for concurrent use: the
// only mutable state is the per-target query counters feeding the
// deterministic drop decisions.
type Injector struct {
	schedule Schedule
	// counts[target+2] is the number of At queries for the target so far
	// (offset 2 covers Database/AllServers).
	counts []atomic.Uint64
}

// NewInjector builds an injector for a deployment of `servers` cache
// servers (plus the database). A nil injector is the healthy system —
// every entry point accepts one.
func NewInjector(s Schedule, servers int) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for _, r := range s.Rules {
		if r.Server >= servers {
			return nil, fmt.Errorf("fault: rule %s targets server %d of %d", r, r.Server, servers)
		}
	}
	return &Injector{
		schedule: s,
		counts:   make([]atomic.Uint64, servers+2),
	}, nil
}

// Schedule returns the injector's schedule.
func (in *Injector) Schedule() Schedule { return in.schedule }

// At evaluates the schedule for one operation at target `server`
// (cache-server index or Database) at `now` seconds since the run
// epoch. Delays from multiple matching rules add; the first non-OK
// outcome in rule order wins. A nil injector always returns the
// zero (healthy) Action.
func (in *Injector) At(server int, now float64) Action {
	var act Action
	if in == nil || len(in.schedule.Rules) == 0 {
		return act
	}
	n := in.counts[server+2].Add(1) - 1
	for i, r := range in.schedule.Rules {
		if !r.matches(server) || !r.active(now) {
			continue
		}
		// Probabilistic rules (p < 1) draw from the counter hash so the
		// n-th operation gets the same verdict on every plane; p=0
		// means every operation.
		hit := func() bool {
			if r.P == 0 || r.P >= 1 {
				return true
			}
			return decide(in.schedule.Seed, uint64(i), uint64(server+2), n) < r.P
		}
		switch r.Kind {
		case KindSlow:
			if hit() {
				act.Delay += r.Delay
			}
		case KindStall:
			if d := r.Until - now; d > 0 && hit() {
				act.Delay += d
			}
		case KindDrop:
			if act.Outcome == OK && hit() {
				act.Delay += r.Delay
				act.Outcome = Drop
			}
		case KindReset:
			if act.Outcome == OK && hit() {
				act.Outcome = Reset
			}
		case KindRefuse, KindFlap:
			if act.Outcome == OK {
				act.Outcome = Refuse
			}
		}
	}
	return act
}

// RefusedAt reports whether server is refusing new connections at now
// (refuse rules and flap down-phases). Unlike At it does not advance
// the per-target query counter: the live accept loop polls it per
// connection attempt, and those polls must not perturb the per-
// operation counter stream that keeps planes aligned.
func (in *Injector) RefusedAt(server int, now float64) bool {
	if in == nil {
		return false
	}
	for _, r := range in.schedule.Rules {
		if !r.matches(server) || !r.active(now) {
			continue
		}
		if r.Kind == KindRefuse || r.Kind == KindFlap {
			return true
		}
	}
	return false
}

// DelayAt collapses any active fault into pure extra latency: slowdowns
// contribute their (probability-weighted) delay, and bounded
// stall/refuse/flap windows act as a server that is unresponsive until
// the window (or flap down phase) ends. The integrated simulator uses
// this view — it models servers, not connections. Drop and reset
// outcomes contribute only their bounded windows: a lost reply or a
// torn-down connection does not make the server itself busier, and a
// servers-only model has no per-connection caller to surface the
// failure to.
func (in *Injector) DelayAt(server int, now float64) float64 {
	if in == nil {
		return 0
	}
	var delay float64
	for _, r := range in.schedule.Rules {
		if !r.matches(server) || !r.active(now) {
			continue
		}
		switch r.Kind {
		case KindSlow:
			d := r.Delay
			if r.P > 0 && r.P < 1 {
				d *= r.P
			}
			delay += d
		case KindStall, KindRefuse:
			if r.Until > now {
				delay += r.Until - now
			} else {
				delay += r.Delay
			}
		case KindDrop, KindReset:
			if r.Until > now {
				delay += r.Until - now
			}
		case KindFlap:
			duty := r.Duty
			if duty <= 0 {
				duty = 0.5
			}
			phase := math.Mod(now-r.From, r.Period)
			delay += duty*r.Period - phase
		}
	}
	return delay
}

// decide hashes (seed, rule, target, query counter) into [0,1) — a
// splitmix64 finalizer, so the n-th query for a target gets the same
// verdict on every plane.
func decide(seed, rule, target, n uint64) float64 {
	x := seed ^ rule*0x9e3779b97f4a7c15 ^ target*0xbf58476d1ce4e5b9 ^ n*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Clock is the live plane's run epoch: servers evaluate fault windows
// against seconds-since-Start. Before Start (e.g. during populate) Now
// reports -Inf so no window is active.
type Clock struct {
	epoch atomic.Int64 // UnixNano; 0 = not started
}

// Start sets the epoch to the current instant (idempotent: the first
// call wins).
func (c *Clock) Start() {
	c.epoch.CompareAndSwap(0, time.Now().UnixNano())
}

// Now returns seconds since Start, or -Inf before Start.
func (c *Clock) Now() float64 {
	e := c.epoch.Load()
	if e == 0 {
		return math.Inf(-1)
	}
	return time.Duration(time.Now().UnixNano() - e).Seconds()
}

// Point binds an injector to one target and a clock — the single-value
// handle the server and backend thread through their options.
type Point struct {
	// Inj is the shared injector (nil = healthy).
	Inj *Injector
	// Server is the target index (or Database).
	Server int
	// Now reports seconds since the run epoch.
	Now func() float64
}

// Eval evaluates the point for one operation. A nil point is healthy.
func (p *Point) Eval() Action {
	if p == nil || p.Inj == nil || p.Now == nil {
		return Action{}
	}
	return p.Inj.At(p.Server, p.Now())
}

// Resilience is the plane-neutral recovery policy a Scenario carries:
// the client (live plane) and the composition simulator interpret the
// same knobs, so "what does this policy buy under this schedule?" is a
// cross-plane question. The zero value disables everything.
type Resilience struct {
	// Retries is the number of extra attempts for idempotent reads after
	// a transport-level failure (0 = off).
	Retries int
	// RetryBackoff is the base backoff in seconds (doubled per attempt,
	// jittered, capped at 8x base).
	RetryBackoff float64
	// HedgeDelay fires a hedged read after this many seconds (0 = use
	// HedgePercentile).
	HedgeDelay float64
	// HedgePercentile, when in (0,1), fires the hedge once the primary
	// exceeds this quantile of observed read latency (the percentile-
	// based policy; 0 with HedgeDelay 0 = hedging off).
	HedgePercentile float64
	// BreakerThreshold opens a per-server circuit breaker when the
	// failure rate over BreakerWindow operations reaches it (0 = off).
	BreakerThreshold float64
	// BreakerWindow is the outcome-window size in operations (default 20).
	BreakerWindow int
	// BreakerCooldown is the open-state duration in seconds before a
	// half-open probe (default 1s).
	BreakerCooldown float64
}

// Enabled reports whether any policy is active.
func (r Resilience) Enabled() bool {
	return r.Retries > 0 || r.HedgeDelay > 0 || r.HedgePercentile > 0 || r.BreakerThreshold > 0
}

// WithDefaults fills the dependent zero values of enabled policies.
func (r Resilience) WithDefaults() Resilience {
	if r.Retries > 0 && r.RetryBackoff == 0 {
		r.RetryBackoff = 1e-3
	}
	if r.BreakerThreshold > 0 {
		if r.BreakerWindow == 0 {
			r.BreakerWindow = 20
		}
		if r.BreakerCooldown == 0 {
			r.BreakerCooldown = 1
		}
	}
	return r
}

// sortRulesByFrom is used by reporting helpers that want a stable
// timeline view of a schedule.
func sortRulesByFrom(rules []Rule) []Rule {
	out := append([]Rule(nil), rules...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// Timeline renders the schedule ordered by window start — handy for
// CLI banners.
func (s Schedule) Timeline() string {
	if s.Empty() {
		return "healthy (no faults)"
	}
	parts := make([]string, 0, len(s.Rules))
	for _, r := range sortRulesByFrom(s.Rules) {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, "; ")
}
