package fault

import (
	"math"
	"testing"
	"time"
)

func TestFaultParseSchedule(t *testing.T) {
	s, err := ParseSchedule("stall:srv=1,from=5s,until=10s;slow:srv=all,delay=200us;drop:srv=0,p=0.3,delay=50ms;flap:srv=db,period=2s,duty=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 4 {
		t.Fatalf("rules = %d", len(s.Rules))
	}
	r := s.Rules[0]
	if r.Kind != KindStall || r.Server != 1 || r.From != 5 || r.Until != 10 {
		t.Errorf("stall rule = %+v", r)
	}
	if s.Rules[1].Kind != KindSlow || s.Rules[1].Server != AllServers || math.Abs(s.Rules[1].Delay-200e-6) > 1e-12 {
		t.Errorf("slow rule = %+v", s.Rules[1])
	}
	if s.Rules[2].P != 0.3 || s.Rules[2].Delay != 0.05 {
		t.Errorf("drop rule = %+v", s.Rules[2])
	}
	if s.Rules[3].Server != Database || s.Rules[3].Period != 2 || s.Rules[3].Duty != 0.25 {
		t.Errorf("flap rule = %+v", s.Rules[3])
	}
	// Round trip through String.
	s2, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if s2.String() != s.String() {
		t.Errorf("round trip: %q != %q", s2.String(), s.String())
	}
}

func TestFaultParseErrors(t *testing.T) {
	for _, spec := range []string{
		"melt:srv=1",
		"slow:srv=1",              // missing delay
		"stall:srv=1,from=5s",     // missing until
		"drop:srv=0,p=1.5",        // p out of range
		"flap:srv=0",              // missing period
		"slow:srv=1,wat=3",        // unknown key
		"slow:srv=1,delay",        // malformed kv
		"slow:srv=zebra,delay=1s", // bad index
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if s, err := ParseSchedule("  "); err != nil || !s.Empty() {
		t.Errorf("blank spec: %v %v", s, err)
	}
}

func TestFaultWindows(t *testing.T) {
	sched := Schedule{Rules: []Rule{
		{Server: 1, Kind: KindSlow, From: 5, Until: 10, Delay: 0.1},
	}}
	in, err := NewInjector(sched, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		server int
		now    float64
		delay  float64
	}{
		{1, 4.9, 0},          // before window
		{1, 5.0, 0.1},        // window start inclusive
		{1, 7.5, 0.1},        // inside
		{1, 10.0, 0},         // window end exclusive
		{0, 7.5, 0},          // other server
		{Database, 7.5, 0},   // database untouched
		{1, math.Inf(-1), 0}, // before Clock.Start
	} {
		act := in.At(tc.server, tc.now)
		if math.Abs(act.Delay-tc.delay) > 1e-12 || act.Outcome != OK {
			t.Errorf("At(%d, %v) = %+v, want delay %v", tc.server, tc.now, act, tc.delay)
		}
	}
}

func TestFaultStallDelaysUntilWindowEnd(t *testing.T) {
	in, err := NewInjector(Schedule{Rules: []Rule{
		{Server: 0, Kind: KindStall, From: 5, Until: 10},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := in.At(0, 6).Delay; math.Abs(d-4) > 1e-12 {
		t.Errorf("stall at t=6: delay %v, want 4", d)
	}
	if d := in.At(0, 9.5).Delay; math.Abs(d-0.5) > 1e-12 {
		t.Errorf("stall at t=9.5: delay %v, want 0.5", d)
	}
}

func TestFaultFlapPhases(t *testing.T) {
	in, err := NewInjector(Schedule{Rules: []Rule{
		{Server: 0, Kind: KindFlap, From: 0, Period: 2, Duty: 0.5},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		now  float64
		down bool
	}{
		{0.1, true}, {0.99, true}, {1.0, false}, {1.9, false},
		{2.0, true}, {2.9, true}, {3.5, false},
	} {
		got := in.At(0, tc.now).Outcome == Refuse
		if got != tc.down {
			t.Errorf("flap at t=%v: down=%v, want %v", tc.now, got, tc.down)
		}
	}
}

// TestFaultInjectorDeterministicAcrossPlanes is the cross-plane
// determinism guarantee: two injectors built from the same schedule,
// walked with the same query sequence (as the sim plane does in virtual
// time and the live plane in wall time), produce identical fault
// decisions — including the probabilistic drops.
func TestFaultInjectorDeterministicAcrossPlanes(t *testing.T) {
	sched := Schedule{
		Seed: 42,
		Rules: []Rule{
			{Server: 0, Kind: KindDrop, P: 0.3, Delay: 0.05},
			{Server: 1, Kind: KindSlow, From: 1, Until: 3, Delay: 0.01},
			{Server: AllServers, Kind: KindDrop, P: 0.05},
		},
	}
	simSide, err := NewInjector(sched, 2)
	if err != nil {
		t.Fatal(err)
	}
	liveSide, err := NewInjector(sched, 2)
	if err != nil {
		t.Fatal(err)
	}
	var drops int
	for i := 0; i < 5000; i++ {
		srv := i % 2
		now := float64(i) * 1e-3
		a, b := simSide.At(srv, now), liveSide.At(srv, now)
		if a != b {
			t.Fatalf("query %d: sim %+v != live %+v", i, a, b)
		}
		if a.Outcome == Drop {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no drops injected")
	}
	// ~0.3+0.05-overlap on server 0, ~0.05 on server 1 → roughly 0.2 of
	// all queries; just sanity-check the rate is in a plausible band.
	rate := float64(drops) / 5000
	if rate < 0.1 || rate > 0.3 {
		t.Errorf("drop rate %v implausible", rate)
	}
	// A different seed must yield a different drop sequence.
	other, err := NewInjector(Schedule{Seed: 43, Rules: sched.Rules}, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 200; i++ {
		if other.At(0, 0).Outcome != simSide.At(0, 0).Outcome {
			same = false
		}
	}
	if same {
		t.Error("seed does not perturb drop decisions")
	}
}

func TestFaultNilInjectorHealthy(t *testing.T) {
	var in *Injector
	if act := in.At(0, 5); act.Faulted() {
		t.Errorf("nil injector faulted: %+v", act)
	}
	if d := in.DelayAt(0, 5); d != 0 {
		t.Errorf("nil injector delay: %v", d)
	}
	var p *Point
	if act := p.Eval(); act.Faulted() {
		t.Errorf("nil point faulted: %+v", act)
	}
}

func TestFaultClock(t *testing.T) {
	var c Clock
	if !math.IsInf(c.Now(), -1) {
		t.Errorf("unstarted clock Now = %v", c.Now())
	}
	c.Start()
	time.Sleep(5 * time.Millisecond)
	if now := c.Now(); now <= 0 || now > 1 {
		t.Errorf("started clock Now = %v", now)
	}
}

func TestFaultInjectorValidation(t *testing.T) {
	if _, err := NewInjector(Schedule{Rules: []Rule{{Server: 5, Kind: KindReset}}}, 2); err == nil {
		t.Error("out-of-range server accepted")
	}
	if _, err := NewInjector(Schedule{Rules: []Rule{{Server: 0, Kind: Kind(99)}}}, 2); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestFaultDelayAtCollapsesOutages(t *testing.T) {
	in, err := NewInjector(Schedule{Rules: []Rule{
		{Server: 0, Kind: KindRefuse, From: 2, Until: 4},
		{Server: 0, Kind: KindSlow, From: 0, Delay: 0.001},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// At t=3 the refuse window has 1s left plus the 1ms slowdown.
	if d := in.DelayAt(0, 3); math.Abs(d-1.001) > 1e-9 {
		t.Errorf("DelayAt = %v, want 1.001", d)
	}
	if d := in.DelayAt(0, 5); math.Abs(d-0.001) > 1e-9 {
		t.Errorf("DelayAt after window = %v, want 0.001", d)
	}
}

func TestFaultResilienceDefaults(t *testing.T) {
	r := Resilience{Retries: 2, BreakerThreshold: 0.5}.WithDefaults()
	if r.RetryBackoff == 0 || r.BreakerWindow == 0 || r.BreakerCooldown == 0 {
		t.Errorf("defaults not filled: %+v", r)
	}
	if (Resilience{}).Enabled() {
		t.Error("zero resilience enabled")
	}
	if !r.Enabled() {
		t.Error("configured resilience disabled")
	}
}
