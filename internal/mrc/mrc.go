// Package mrc computes miss-ratio curves (MRCs) from key-access traces
// using Mattson's stack-distance algorithm (O(n log n) via a Fenwick
// tree). The paper treats the cache miss ratio r as an exogenous
// input to its latency model (§5.2.3); an MRC is how a deployment
// derives r from a workload trace and a cache size — closing the loop
// between trace, cache provisioning and the Theorem 1 latency estimate
// (the approach of the Cliffhanger/Dynacache line of work the paper
// cites).
package mrc

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptyTrace is returned when no accesses were recorded.
var ErrEmptyTrace = errors.New("mrc: empty trace")

// Analyzer ingests a key-access stream and accumulates the reuse
// (stack) distance histogram. It implements Mattson's algorithm for an
// LRU stack: the stack distance of an access is the number of DISTINCT
// keys touched since the previous access to the same key; an access
// hits in an LRU cache of capacity c iff its stack distance <= c.
type Analyzer struct {
	// lastIndex maps key -> position of its most recent access.
	lastIndex map[string]int
	// fenwick marks positions that are the latest access of their key.
	fenwick []int
	// n is the number of accesses so far.
	n int
	// histogram[d] counts accesses with stack distance d (1-based);
	// stored sparsely.
	histogram map[int]int64
	// cold counts first-ever accesses (infinite distance).
	cold int64
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		lastIndex: make(map[string]int),
		histogram: make(map[int]int64),
	}
}

// fenwick helpers (1-based).
func (a *Analyzer) fenwickAdd(i, delta int) {
	for ; i < len(a.fenwick); i += i & (-i) {
		a.fenwick[i] += delta
	}
}

func (a *Analyzer) fenwickSum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += a.fenwick[i]
	}
	return s
}

// Add records one access.
func (a *Analyzer) Add(key string) {
	a.n++
	pos := a.n // 1-based position of this access
	// Grow the Fenwick tree amortized-doubling style.
	for len(a.fenwick) <= pos {
		grown := make([]int, maxInt(2*len(a.fenwick), 1024))
		copy(grown, a.fenwick)
		a.fenwick = grown
	}
	if prev, ok := a.lastIndex[key]; ok {
		// Stack distance = number of distinct keys accessed strictly
		// after prev = marked positions in (prev, pos), plus 1 for the
		// key itself... Mattson counts the key's own position: an LRU
		// cache of capacity c hits iff (distinct keys since last access,
		// inclusive of this key) <= c.
		distinctBetween := a.fenwickSum(pos-1) - a.fenwickSum(prev)
		d := distinctBetween + 1
		a.histogram[d]++
		a.fenwickAdd(prev, -1) // old position no longer the latest
	} else {
		a.cold++
	}
	a.fenwickAdd(pos, 1)
	a.lastIndex[key] = pos
}

// Accesses reports the number of recorded accesses.
func (a *Analyzer) Accesses() int64 { return int64(a.n) }

// UniqueKeys reports the number of distinct keys seen.
func (a *Analyzer) UniqueKeys() int { return len(a.lastIndex) }

// Curve is a finished miss-ratio curve: MissRatio(c) for every LRU
// cache capacity c (in items).
type Curve struct {
	// distances are the sorted distinct stack distances observed.
	distances []int
	// cumHits[i] counts accesses with stack distance <= distances[i].
	cumHits []int64
	// total is the number of accesses.
	total int64
	// cold is the number of compulsory (first-access) misses.
	cold int64
	// uniques is the number of distinct keys.
	uniques int
}

// Curve freezes the analyzer into a queryable curve.
func (a *Analyzer) Curve() (*Curve, error) {
	if a.n == 0 {
		return nil, ErrEmptyTrace
	}
	distances := make([]int, 0, len(a.histogram))
	for d := range a.histogram {
		distances = append(distances, d)
	}
	sort.Ints(distances)
	cum := make([]int64, len(distances))
	var running int64
	for i, d := range distances {
		running += a.histogram[d]
		cum[i] = running
	}
	return &Curve{
		distances: distances,
		cumHits:   cum,
		total:     int64(a.n),
		cold:      a.cold,
		uniques:   len(a.lastIndex),
	}, nil
}

// Compute is the one-shot convenience over a full trace.
func Compute(keys []string) (*Curve, error) {
	a := NewAnalyzer()
	for _, k := range keys {
		a.Add(k)
	}
	return a.Curve()
}

// MissRatio returns the fraction of accesses that miss in an LRU cache
// holding capacityItems items. Capacity 0 misses everything; capacity
// >= the distinct-key count leaves only compulsory misses.
func (c *Curve) MissRatio(capacityItems int) float64 {
	if capacityItems <= 0 {
		return 1
	}
	// hits = accesses with stack distance <= capacity.
	i := sort.SearchInts(c.distances, capacityItems+1) - 1
	var hits int64
	if i >= 0 {
		hits = c.cumHits[i]
	}
	return 1 - float64(hits)/float64(c.total)
}

// ColdMissRatio returns the compulsory-miss floor (first accesses /
// total): no cache size can go below it.
func (c *Curve) ColdMissRatio() float64 {
	return float64(c.cold) / float64(c.total)
}

// UniqueKeys reports the trace's distinct-key count (the capacity at
// which the curve reaches its floor).
func (c *Curve) UniqueKeys() int { return c.uniques }

// CapacityForMissRatio returns the smallest LRU capacity (in items)
// whose miss ratio is <= target. It returns an error when the target is
// below the compulsory floor. Degenerate curves (a single observed
// stack distance, or no reuse at all) would make the search bottom out
// at a meaningless zero-item cache; the result is floored at 1 item.
func (c *Curve) CapacityForMissRatio(target float64) (int, error) {
	if math.IsNaN(target) || target < 0 || target > 1 {
		return 0, fmt.Errorf("mrc: target %v out of [0, 1]", target)
	}
	if target < c.ColdMissRatio() {
		return 0, fmt.Errorf("mrc: target %.4f below compulsory floor %.4f",
			target, c.ColdMissRatio())
	}
	// Binary search over the observed distance grid.
	lo, hi := 0, c.uniques
	for lo < hi {
		mid := (lo + hi) / 2
		if c.MissRatio(mid) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < 1 {
		lo = 1
	}
	return lo, nil
}

// TierSplit is the per-access outcome split of a two-tier (RAM + SSD)
// cache: the three probabilities sum to 1.
type TierSplit struct {
	// RAMHit: stack distance <= RAM capacity.
	RAMHit float64
	// DiskHit: the access misses RAM but its distance fits RAM+SSD —
	// exactly the population an extstore tier converts from backend
	// fetches into disk reads.
	DiskHit float64
	// DBMiss: distance beyond both tiers, plus compulsory misses.
	DBMiss float64
}

// Split evaluates the curve at two capacity points — RAM alone versus
// RAM+SSD — giving the tier hit ratios of an inclusive two-tier LRU:
// every access with stack distance in (ramItems, totalItems] is a
// disk hit. This is the two-point evaluation the model plane uses to
// price the extstore service stage.
func (c *Curve) Split(ramItems, totalItems int) (TierSplit, error) {
	if ramItems < 0 || totalItems < ramItems {
		return TierSplit{}, fmt.Errorf("mrc: invalid tier capacities ram=%d total=%d",
			ramItems, totalItems)
	}
	mRAM := c.MissRatio(ramItems)
	mTot := c.MissRatio(totalItems)
	return TierSplit{
		RAMHit:  1 - mRAM,
		DiskHit: mRAM - mTot,
		DBMiss:  mTot,
	}, nil
}

// DiskHitFraction is the conditional probability that a RAM miss is
// served by the disk tier — the number a live extstore's
// hits/(hits+misses) counters should converge to.
func (t TierSplit) DiskHitFraction() float64 {
	miss := t.DiskHit + t.DBMiss
	if miss <= 0 {
		return 0
	}
	return t.DiskHit / miss
}

// Points samples the curve at the given capacities (for plotting).
func (c *Curve) Points(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, cap := range capacities {
		out[i] = c.MissRatio(cap)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
