package mrc

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"memqlat/internal/dist"
)

func TestEmptyTrace(t *testing.T) {
	a := NewAnalyzer()
	if _, err := a.Curve(); err != ErrEmptyTrace {
		t.Errorf("err = %v", err)
	}
}

func TestSingleKeyTrace(t *testing.T) {
	// a a a a: 1 cold miss, then stack distance 1 hits.
	curve, err := Compute([]string{"a", "a", "a", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := curve.MissRatio(1); got != 0.25 {
		t.Errorf("missRatio(1) = %v, want 0.25", got)
	}
	if got := curve.ColdMissRatio(); got != 0.25 {
		t.Errorf("cold = %v", got)
	}
	if curve.UniqueKeys() != 1 {
		t.Errorf("uniques = %d", curve.UniqueKeys())
	}
	if got := curve.MissRatio(0); got != 1 {
		t.Errorf("missRatio(0) = %v", got)
	}
}

func TestKnownStackDistances(t *testing.T) {
	// Trace: a b c a  -> the second 'a' has stack distance 3
	// (distinct keys a,b,c since inclusive), so it hits iff capacity >= 3.
	curve, err := Compute([]string{"a", "b", "c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := curve.MissRatio(2); got != 1.0 {
		t.Errorf("missRatio(2) = %v, want 1 (all four accesses miss)", got)
	}
	if got := curve.MissRatio(3); got != 0.75 {
		t.Errorf("missRatio(3) = %v, want 0.75", got)
	}
}

func TestCyclicTraceCliff(t *testing.T) {
	// Round-robin over 10 keys, 100 rounds: classic LRU pathology —
	// capacity 9 gives 100% misses, capacity 10 gives only cold misses.
	var trace []string
	for round := 0; round < 100; round++ {
		for k := 0; k < 10; k++ {
			trace = append(trace, fmt.Sprintf("key-%d", k))
		}
	}
	curve, err := Compute(trace)
	if err != nil {
		t.Fatal(err)
	}
	if got := curve.MissRatio(9); got != 1.0 {
		t.Errorf("missRatio(9) = %v, want 1 (LRU thrashing)", got)
	}
	if got := curve.MissRatio(10); !almostEqual(got, 0.01, 1e-9) {
		t.Errorf("missRatio(10) = %v, want 0.01 (cold only)", got)
	}
}

func TestMissRatioMonotoneNonIncreasing(t *testing.T) {
	rng := dist.NewRand(1)
	zipf, err := dist.NewZipf(500, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	for i := 0; i < 20000; i++ {
		a.Add(fmt.Sprintf("k-%d", zipf.SampleInt(rng)))
	}
	curve, err := a.Curve()
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for c := 0; c <= 500; c += 10 {
		mr := curve.MissRatio(c)
		if mr > prev+1e-12 {
			t.Fatalf("miss ratio increased at capacity %d: %v > %v", c, mr, prev)
		}
		if mr < 0 || mr > 1 {
			t.Fatalf("miss ratio out of range: %v", mr)
		}
		prev = mr
	}
	// Full capacity leaves only compulsory misses.
	if got := curve.MissRatio(curve.UniqueKeys()); !almostEqual(got, curve.ColdMissRatio(), 1e-9) {
		t.Errorf("floor = %v, cold = %v", got, curve.ColdMissRatio())
	}
}

func TestCapacityForMissRatio(t *testing.T) {
	rng := dist.NewRand(2)
	zipf, err := dist.NewZipf(300, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	for i := 0; i < 30000; i++ {
		a.Add(fmt.Sprintf("k-%d", zipf.SampleInt(rng)))
	}
	curve, err := a.Curve()
	if err != nil {
		t.Fatal(err)
	}
	target := 0.05
	capNeeded, err := curve.CapacityForMissRatio(target)
	if err != nil {
		t.Fatal(err)
	}
	if got := curve.MissRatio(capNeeded); got > target {
		t.Errorf("missRatio(%d) = %v > target", capNeeded, got)
	}
	if capNeeded > 0 {
		if got := curve.MissRatio(capNeeded - 1); got <= target {
			t.Errorf("capacity %d not minimal (smaller works: %v)", capNeeded, got)
		}
	}
	// Unreachable target.
	if _, err := curve.CapacityForMissRatio(curve.ColdMissRatio() / 2); err == nil {
		t.Error("target below compulsory floor accepted")
	}
	if _, err := curve.CapacityForMissRatio(-0.1); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := curve.CapacityForMissRatio(math.NaN()); err == nil {
		t.Error("NaN target accepted")
	}
}

func TestPointsSampling(t *testing.T) {
	curve, err := Compute([]string{"a", "b", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	pts := curve.Points([]int{0, 1, 2})
	if len(pts) != 3 || pts[0] != 1 || pts[2] != 0.5 {
		t.Errorf("points = %v", pts)
	}
}

func TestAnalyzerCounters(t *testing.T) {
	a := NewAnalyzer()
	for _, k := range []string{"x", "y", "x", "z"} {
		a.Add(k)
	}
	if a.Accesses() != 4 || a.UniqueKeys() != 3 {
		t.Errorf("accesses=%d uniques=%d", a.Accesses(), a.UniqueKeys())
	}
}

// Property: against a brute-force LRU simulation, the MRC must agree
// exactly for every capacity.
func TestPropertyMatchesBruteForceLRU(t *testing.T) {
	f := func(seed uint64, nKeys, nAccess uint8) bool {
		keys := int(nKeys)%12 + 2
		accesses := int(nAccess)%150 + 20
		rng := dist.NewRand(seed)
		var trace []string
		for i := 0; i < accesses; i++ {
			trace = append(trace, fmt.Sprintf("k%d", rng.IntN(keys)))
		}
		curve, err := Compute(trace)
		if err != nil {
			return false
		}
		for capacity := 1; capacity <= keys+1; capacity++ {
			want := bruteForceLRUMissRatio(trace, capacity)
			got := curve.MissRatio(capacity)
			if math.Abs(got-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// bruteForceLRUMissRatio simulates an actual LRU list.
func bruteForceLRUMissRatio(trace []string, capacity int) float64 {
	var lru []string // front = most recent
	misses := 0
	for _, k := range trace {
		found := -1
		for i, v := range lru {
			if v == k {
				found = i
				break
			}
		}
		if found >= 0 {
			lru = append(lru[:found], lru[found+1:]...)
		} else {
			misses++
			if len(lru) == capacity {
				lru = lru[:len(lru)-1]
			}
		}
		lru = append([]string{k}, lru...)
	}
	return float64(misses) / float64(len(trace))
}

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1e-15, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDegenerateSinglePointCurve(t *testing.T) {
	// One key, repeated: the histogram holds a single stack distance,
	// so every query hits the same step edge.
	curve, err := Compute([]string{"a", "a", "a", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := curve.MissRatio(0); got != 1 {
		t.Errorf("MissRatio(0) = %v, want 1", got)
	}
	if got := curve.MissRatio(1); got != 0.25 {
		t.Errorf("MissRatio(1) = %v, want 0.25 (only the compulsory miss)", got)
	}
	if got := curve.MissRatio(100); got != 0.25 {
		t.Errorf("MissRatio(100) = %v, want floor 0.25", got)
	}
	capNeeded, err := curve.CapacityForMissRatio(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if capNeeded != 1 {
		t.Errorf("CapacityForMissRatio(0.25) = %d, want 1", capNeeded)
	}
}

func TestDegenerateNoReuseCurve(t *testing.T) {
	// Every access is cold: the histogram is empty, the distance grid
	// has zero points, and no capacity beats the compulsory floor.
	curve, err := Compute([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if got := curve.MissRatio(2); got != 1 {
		t.Errorf("MissRatio(2) = %v, want 1", got)
	}
	if got := curve.ColdMissRatio(); got != 1 {
		t.Errorf("ColdMissRatio = %v, want 1", got)
	}
	// A capacity of zero items is never a meaningful provisioning
	// answer, even when the target is trivially met everywhere.
	capNeeded, err := curve.CapacityForMissRatio(1)
	if err != nil {
		t.Fatal(err)
	}
	if capNeeded < 1 {
		t.Errorf("CapacityForMissRatio(1) = %d, want >= 1", capNeeded)
	}
}

func TestTierSplit(t *testing.T) {
	// Trace engineered so distances 1..3 each occur: a cache of 1 is
	// the RAM tier, 3 the RAM+SSD total.
	trace := []string{"a", "a", "b", "a", "c", "b", "a", "c", "b", "a"}
	curve, err := Compute(trace)
	if err != nil {
		t.Fatal(err)
	}
	split, err := curve.Split(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum := split.RAMHit + split.DiskHit + split.DBMiss
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("split sums to %v, want 1 (%+v)", sum, split)
	}
	if !almostEqual(split.RAMHit, 1-curve.MissRatio(1), 1e-9) {
		t.Errorf("RAMHit = %v, want %v", split.RAMHit, 1-curve.MissRatio(1))
	}
	if !almostEqual(split.DBMiss, curve.MissRatio(3), 1e-9) {
		t.Errorf("DBMiss = %v, want %v", split.DBMiss, curve.MissRatio(3))
	}
	if split.DiskHit <= 0 {
		t.Errorf("DiskHit = %v, want > 0 for a reuse-heavy trace", split.DiskHit)
	}
	want := split.DiskHit / (split.DiskHit + split.DBMiss)
	if got := split.DiskHitFraction(); !almostEqual(got, want, 1e-9) {
		t.Errorf("DiskHitFraction = %v, want %v", got, want)
	}

	// Validation and degenerate edges.
	if _, err := curve.Split(-1, 3); err == nil {
		t.Error("Split(-1, 3) should fail")
	}
	if _, err := curve.Split(3, 1); err == nil {
		t.Error("Split(3, 1) should fail")
	}
	same, err := curve.Split(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if same.DiskHit != 0 {
		t.Errorf("zero-size SSD tier DiskHit = %v, want 0", same.DiskHit)
	}
	if same.DiskHitFraction() != 0 {
		t.Errorf("zero-size SSD DiskHitFraction = %v, want 0", same.DiskHitFraction())
	}
}
