package mrc_test

import (
	"fmt"

	"memqlat/internal/mrc"
)

// A cyclic trace over 3 keys shows the classic LRU cliff: capacity 2
// thrashes (every access misses), capacity 3 leaves only the 3
// compulsory misses.
func ExampleCompute() {
	trace := []string{
		"a", "b", "c",
		"a", "b", "c",
		"a", "b", "c",
	}
	curve, err := mrc.Compute(trace)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("capacity 2: %.0f%% miss\n", curve.MissRatio(2)*100)
	fmt.Printf("capacity 3: %.0f%% miss\n", curve.MissRatio(3)*100)
	// Output:
	// capacity 2: 100% miss
	// capacity 3: 33% miss
}

// How much cache does a 40% miss-ratio target need on this trace?
func ExampleCurve_CapacityForMissRatio() {
	curve, err := mrc.Compute([]string{"x", "y", "x", "y", "z", "x", "y", "z"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	capacity, err := curve.CapacityForMissRatio(0.4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("need %d items\n", capacity)
	// Output:
	// need 3 items
}
