// Integration and failure-injection tests across package boundaries:
// the live TCP stack end to end, cross-validation of the two simulator
// modes, and behaviour under injected faults (killed servers, garbage
// bytes, overloaded backend, memory pressure).
package memqlat_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"testing"
	"time"

	"memqlat/internal/backend"
	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/core"
	"memqlat/internal/loadgen"
	"memqlat/internal/server"
	"memqlat/internal/sim"
)

// startServer brings up one cache server on loopback.
func startServer(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	if opts.Cache == nil {
		c, err := cache.New(cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = c
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, l.Addr().String()
}

// TestFullStackEndToEnd drives the complete read path: loadgen →
// client → TCP → server → cache, with misses relayed to the backend —
// the system of the paper's Fig. 1 in one process.
func TestFullStackEndToEnd(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		_, addr := startServer(t, server.Options{})
		addrs = append(addrs, addr)
	}
	db, err := backend.New(backend.Options{MuD: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	cl, err := client.New(client.Options{Servers: addrs, Filler: db})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	opts := loadgen.Options{
		Client: cl, Keys: 500, Ops: 2000, Lambda: 100000,
		Xi: 0.15, Q: 0.1, MissRatio: 0.02, Workers: 16,
		UseGetThrough: true, Seed: 42,
	}
	if err := loadgen.Populate(opts); err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.Issued != 2000 {
		t.Errorf("issued = %d", res.Issued)
	}
	if res.Misses == 0 {
		t.Error("forced misses never reached the backend")
	}
	if db.Stats().Lookups == 0 {
		t.Error("backend saw no lookups")
	}
	// Both servers participated.
	for i := range addrs {
		st, err := cl.ServerStats(i)
		if err != nil {
			t.Fatal(err)
		}
		if st["cmd_get"] == "0" {
			t.Errorf("server %d served no gets", i)
		}
	}
}

// TestSimulatorModesAgree cross-validates the composition simulator
// against the independent event-driven simulator on a configuration
// where the model's assumptions hold well (Poisson, single keys).
func TestSimulatorModesAgree(t *testing.T) {
	model := &core.Config{
		N:              1,
		LoadRatios:     core.BalancedLoad(4),
		TotalKeyRate:   4 * 40000,
		Q:              0,
		Xi:             0,
		MuS:            80000,
		MissRatio:      0,
		MuD:            1000,
		NetworkLatency: 0,
	}
	comp, err := sim.SimulateRequests(sim.RequestConfig{
		Model: model, Requests: 30000, KeysPerServer: 150000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	integ, err := sim.SimulateIntegrated(sim.IntegratedConfig{
		Model: model, Requests: 30000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := comp.TS.Mean(), integ.TS.Mean()
	if a < b*0.93 || a > b*1.07 {
		t.Errorf("composition %v vs integrated %v diverge > 7%%", a, b)
	}
	// Both match the M/M/1 closed form 1/(µ−λ) = 25µs.
	want := 1.0 / 40000
	for name, got := range map[string]float64{"composition": a, "integrated": b} {
		if got < want*0.93 || got > want*1.07 {
			t.Errorf("%s mean %v vs M/M/1 %v", name, got, want)
		}
	}
}

// TestServerKilledMidRun injects a server crash: in-flight and
// subsequent operations must fail fast with errors, not hang.
func TestServerKilledMidRun(t *testing.T) {
	srv, addr := startServer(t, server.Options{})
	cl, err := client.New(client.Options{
		Servers:     []string{addr},
		OpTimeout:   500 * time.Millisecond,
		DialTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	if err := cl.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = cl.Get("k")
	if err == nil {
		t.Fatal("get succeeded against a dead server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("failure took %v, should fail fast", elapsed)
	}
}

// TestGarbageBytesOnWire injects protocol garbage followed by a valid
// command: the server must answer CLIENT_ERROR and keep serving.
func TestGarbageBytesOnWire(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if _, err := conn.Write([]byte("\x00\x01garbage\x7f\xff\r\nversion\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf[:n])
	if !strings.Contains(got, "CLIENT_ERROR") {
		t.Errorf("no CLIENT_ERROR in %q", got)
	}
	// Read more if the VERSION reply hasn't arrived yet.
	if !strings.Contains(got, "VERSION") {
		n2, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("connection died after garbage: %v", err)
		}
		got += string(buf[:n2])
	}
	if !strings.Contains(got, "VERSION") {
		t.Errorf("server did not recover: %q", got)
	}
}

// TestBackendOverloadSurfaces injects backend saturation: GetThrough
// must surface the overload error rather than hang or panic.
func TestBackendOverloadSurfaces(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	db, err := backend.New(backend.Options{
		MuD: 0.5, Mode: backend.ModeSingleQueue, QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	cl, err := client.New(client.Options{Servers: []string{addr}, Filler: db})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			_, _, err := cl.GetThrough(ctx, fmt.Sprintf("missing-%d", i))
			errCh <- err
		}()
	}
	sawOverload := false
	for i := 0; i < 8; i++ {
		err := <-errCh
		if err == nil {
			t.Error("overloaded backend returned success")
		}
		if errors.Is(err, backend.ErrOverloaded) {
			sawOverload = true
		}
	}
	if !sawOverload {
		t.Error("no ErrOverloaded surfaced from the saturated backend")
	}
}

// TestMemoryPressureEndToEnd injects cache pressure over the wire: a
// tiny cache must evict rather than fail, and stay protocol-correct.
func TestMemoryPressureEndToEnd(t *testing.T) {
	small, err := cache.New(cache.Options{MaxBytes: 8 << 10, Shards: 1, MaxItemSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, server.Options{Cache: small})
	cl, err := client.New(client.Options{Servers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	value := []byte(strings.Repeat("x", 512))
	for i := 0; i < 200; i++ {
		if err := cl.Set(fmt.Sprintf("pressure-%d", i), value, 0, 0); err != nil {
			t.Fatalf("set %d under pressure: %v", i, err)
		}
	}
	// Oversized value is rejected cleanly.
	err = cl.Set("big", []byte(strings.Repeat("x", 2048)), 0, 0)
	if err == nil {
		t.Error("oversized value accepted")
	}
	// The newest keys survive; the connection still works.
	if _, err := cl.Get("pressure-199"); err != nil {
		t.Errorf("most recent key evicted or conn broken: %v", err)
	}
	st, err := cl.ServerStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st["evictions"] == "0" {
		t.Error("no evictions under pressure")
	}
}

// TestTheoryMatchesLiveShapedServer is the tightest live check: one
// shaped server, one connection, sequential closed-loop gets — the
// response time should approach the M/M/1-like service mean without
// queueing (closed loop, one outstanding request).
func TestTheoryMatchesLiveShapedServer(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive live test")
	}
	const mu = 200.0 // 5ms mean service: well above timer granularity
	_, addr := startServer(t, server.Options{ServiceRate: mu, Seed: 3})
	cl, err := client.New(client.Options{Servers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	if err := cl.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	const ops = 60
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := cl.Get("k"); err != nil {
			t.Fatal(err)
		}
	}
	mean := time.Since(start).Seconds() / ops
	want := 1 / mu
	if mean < want*0.8 || mean > want*2.0 {
		t.Errorf("closed-loop mean %vs vs shaped service mean %vs", mean, want)
	}
}
