#!/usr/bin/env bash
# slo_smoke.sh — end-to-end check of the model-anchored SLO watchdog.
#
# Leg 1 boots memcached-server with a watchdog anchored at λ=100/s and
# drives 4x that load through mcbench: the queue_wait stage must leave
# its Theorem-1 band, the "slo alert kind=drift" line must land on the
# server's stderr, and /debug/watch must attribute the drift to
# queue_wait. The same leg arms -exemplars and asserts the /metrics
# stage histograms carry a trace_id exemplar.
#
# Leg 2 runs mcbench's live plane with its own watchdog and a db-slow
# fault injected mid-run: the alert line and the top-drift attribution
# (miss_penalty) must appear in the benchmark output.
#
# Used by the CI verify job; runnable locally from the repo root.
set -euo pipefail

srv=$(mktemp -t memcached-server-slo.XXXXXX)
mcb=$(mktemp -t mcbench-slo.XXXXXX)
errlog=$(mktemp -t slo-smoke-err.XXXXXX)
go build -o "$srv" ./cmd/memcached-server
go build -o "$mcb" ./cmd/mcbench

addr=127.0.0.1:18311
admin=127.0.0.1:18312
"$srv" -addr "$addr" -admin "$admin" -service-rate 500 -trace-ring 1024 -exemplars \
    -slo 'lambda=100,mus=500,q=0.1,xi=0.15,window=0.5s,k=2,band=3' 2>"$errlog" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -f "$srv" "$mcb" "$errlog"' EXIT INT TERM

ok=0
i=0
while [ "$i" -lt 50 ]; do
    if curl -fsS "http://$admin/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ "$ok" != 1 ]; then
    echo "FAIL: admin plane never answered /healthz" >&2
    exit 1
fi

# 4x the anchored arrival rate: the server queues far past the λ=100
# band, which is exactly the drift the watchdog must catch.
# -slow arms the client tracer so commands carry in-band trace IDs,
# which is what feeds the server's exemplar store.
"$mcb" -servers "$addr" -keys 200 -value-size 64 -lambda 400 -ops 1200 \
    -workers 32 -seed 7 -trace-ring 1024 -slow 10s >/dev/null

watch=$(curl -fsS "http://$admin/debug/watch")
case $watch in
*'"top_drift": "queue_wait"'*) ;;
*)
    echo "FAIL: /debug/watch did not attribute drift to queue_wait:" >&2
    printf '%s\n' "$watch" >&2
    exit 1
    ;;
esac

if ! grep -q 'slo alert kind=drift.*stage=queue_wait' "$errlog"; then
    echo "FAIL: no queue_wait drift alert line on server stderr:" >&2
    cat "$errlog" >&2
    exit 1
fi

metrics=$(curl -fsS "http://$admin/metrics")
for family in memqlat_slo_armed memqlat_slo_windows_closed_total \
    memqlat_slo_stage_drifting memqlat_slo_drift_alerts_total \
    memqlat_server_latency_sample_every; do
    case $metrics in
    *"$family"*) ;;
    *)
        echo "FAIL: /metrics missing family $family" >&2
        exit 1
        ;;
    esac
done
if ! printf '%s\n' "$metrics" | grep -q 'memqlat_slo_stage_drifting{stage="queue_wait"} 1'; then
    echo "FAIL: /metrics does not show queue_wait drifting" >&2
    exit 1
fi
if ! printf '%s\n' "$metrics" | grep -q 'trace_id="'; then
    echo "FAIL: /metrics carries no exemplars despite -exemplars and traced load" >&2
    exit 1
fi

kill "$pid" 2>/dev/null || true

# Leg 2: the live plane with a mid-run db slowdown; the watchdog rides
# the run and must name miss_penalty.
bench_out=$("$mcb" -plane=live -plane-servers 2 -lambda 300 -mus 500 -n 1 \
    -ops 900 -workers 32 -miss-ratio 0.2 -mud 500 -seed 7 \
    -faults 'slow:srv=db,from=1s,delay=50ms' \
    -slo 'window=0.5s,k=2,band=3')
case $bench_out in
*'slo alert kind=drift'*) ;;
*)
    echo "FAIL: mcbench live run fired no drift alert:" >&2
    printf '%s\n' "$bench_out" >&2
    exit 1
    ;;
esac
case $bench_out in
*'top drift miss_penalty'*) ;;
*)
    echo "FAIL: mcbench live run did not attribute drift to miss_penalty:" >&2
    printf '%s\n' "$bench_out" >&2
    exit 1
    ;;
esac

echo "slo smoke OK: queue_wait overload attributed on /debug/watch + stderr, exemplars exposed, live-plane db fault attributed to miss_penalty"
