#!/usr/bin/env bash
# qos_smoke.sh — boot a live memcached-server with a standalone mcproxy
# enforcing tenant quotas in front of it, overload one tenant via
# mcbench, and assert the QoS layer held end to end over real TCP: the
# aggressor shed, the victim did not, the victim's p99 stayed bounded,
# and the proxy's /metrics ledger agrees. Used by the CI verify job;
# runnable locally from the repo root.
set -euo pipefail

srv=$(mktemp -t memcached-server-qos.XXXXXX)
prx=$(mktemp -t mcproxy-qos.XXXXXX)
mcb=$(mktemp -t mcbench-qos.XXXXXX)
out=$(mktemp -t mcbench-qos-out.XXXXXX)
go build -o "$srv" ./cmd/memcached-server
go build -o "$prx" ./cmd/mcproxy
go build -o "$mcb" ./cmd/mcbench

addr=127.0.0.1:18217
paddr=127.0.0.1:18218
admin=127.0.0.1:18219

"$srv" -addr "$addr" &
spid=$!
# The proxy enforces the quotas: the victim is unlimited, the
# aggressor's 150 ops/s is far under the ~800/s mcbench offers it. The
# 80-op burst absorbs the populate sets so only the run sheds.
"$prx" -listen "$paddr" -servers "$addr" -admin "$admin" \
    -tenants "victim;aggressor:rate=150,burst=80" &
ppid=$!
trap 'kill "$spid" "$ppid" 2>/dev/null || true; rm -f "$srv" "$prx" "$mcb" "$out"' EXIT INT TERM

ok=0
for _ in $(seq 50); do
    if curl -fsS "http://$admin/healthz" >/dev/null 2>&1 &&
        "$mcb" -servers "$paddr" -keys 8 -ops 1 -lambda 100 >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ "$ok" != 1 ]; then
    echo "FAIL: proxy never answered" >&2
    exit 1
fi

# mcbench's own specs carry no rates: they only shape the offered mix
# (50/50 prefixed key streams through its pass-through proxy). The
# standalone mcproxy is the enforcement point under test.
"$mcb" -servers "$paddr" -proxy \
    -tenants "victim:share=0.5;aggressor:share=0.5" \
    -keys 64 -ops 8000 -lambda 1600 -workers 32 -timeout 60s | tee "$out"

victim=$(grep -Eo 'victim: issued=[0-9]+ shed=[0-9]+ p99us=[0-9]+' "$out")
aggr=$(grep -Eo 'aggressor: issued=[0-9]+ shed=[0-9]+ p99us=[0-9]+' "$out")
if [ -z "$victim" ] || [ -z "$aggr" ]; then
    echo "FAIL: mcbench reported no tenant rows" >&2
    exit 1
fi
vshed=$(echo "$victim" | sed -E 's/.*shed=([0-9]+).*/\1/')
ashed=$(echo "$aggr" | sed -E 's/.*shed=([0-9]+).*/\1/')
vp99=$(echo "$victim" | sed -E 's/.*p99us=([0-9]+).*/\1/')
if [ "$vshed" -ne 0 ]; then
    echo "FAIL: victim shed $vshed ops (want 0)" >&2
    exit 1
fi
if [ "$ashed" -le 0 ]; then
    echo "FAIL: aggressor shed nothing at 5x quota" >&2
    exit 1
fi
# Generous fixed bound: an unshaped server answers in microseconds;
# triple-digit ms means admitted traffic queued behind the aggressor.
if [ "$vp99" -ge 100000 ]; then
    echo "FAIL: victim p99 ${vp99}us >= 100ms" >&2
    exit 1
fi

metrics=$(curl -fsS "http://$admin/metrics")
mshed_aggr=$(echo "$metrics" | awk '/^memqlat_tenant_shed_total\{tenant="aggressor"\}/ {print $2}')
mshed_victim=$(echo "$metrics" | awk '/^memqlat_tenant_shed_total\{tenant="victim"\}/ {print $2}')
if [ -z "$mshed_aggr" ] || [ "${mshed_aggr%.*}" -le 0 ]; then
    echo "FAIL: proxy /metrics shows no aggressor sheds (got '$mshed_aggr')" >&2
    echo "$metrics" | grep memqlat_tenant || true
    exit 1
fi
if [ -z "$mshed_victim" ] || [ "${mshed_victim%.*}" -ne 0 ]; then
    echo "FAIL: proxy /metrics shows victim sheds (got '$mshed_victim')" >&2
    exit 1
fi

echo "OK: aggressor shed $ashed (ledger $mshed_aggr), victim shed 0, victim p99 ${vp99}us"
