#!/usr/bin/env bash
# coverfloor.sh PROFILE FLOOR LABEL — fail when a package's total
# statement coverage (from `go test -coverprofile`) drops below FLOOR
# percent. The floors checked in CI are the pre-shard coverage levels of
# internal/cache and internal/protocol, so hot-path rework cannot shed
# tests silently.
set -euo pipefail

profile=$1
floor=$2
label=$3

total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "coverfloor: no total line in $profile" >&2
    exit 1
fi
echo "$label coverage: ${total}% (floor ${floor}%)"
if awk -v got="$total" -v floor="$floor" 'BEGIN { exit !(got + 0 < floor + 0) }'; then
    echo "FAIL: $label coverage ${total}% fell below the ${floor}% floor" >&2
    exit 1
fi
