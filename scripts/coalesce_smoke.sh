#!/usr/bin/env bash
# coalesce_smoke.sh — boot a live memcached-server, drive a hot-key
# steady-miss workload through mcbench with single-flight coalescing,
# and assert the backend fetch count sits far below the miss count
# (the thundering-herd protection working end to end over real TCP).
# Used by the CI verify job; runnable locally from the repo root.
set -euo pipefail

srv=$(mktemp -t memcached-server-coalesce.XXXXXX)
bench=$(mktemp -t mcbench-coalesce.XXXXXX)
go build -o "$srv" ./cmd/memcached-server
go build -o "$bench" ./cmd/mcbench

addr=127.0.0.1:18213
"$srv" -addr "$addr" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -f "$srv" "$bench"' EXIT INT TERM

ok=0
i=0
while [ "$i" -lt 50 ]; do
    if "$bench" -servers "$addr" -keys 8 -ops 1 -lambda 100 >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ "$ok" != 1 ]; then
    echo "FAIL: server never answered" >&2
    exit 1
fi

# Hot-key herd: every get forced to miss on a tiny Zipf keyspace, fills
# held in flight ~10ms each (mud=100), negative fill TTL so write-backs
# never mask later misses. 32 workers pile onto the same key, so with
# -coalesce most misses must fan in to an existing fetch.
out=$("$bench" -servers "$addr" -keys 8 -hot-zipf 4 -ops 3000 -lambda 1500 \
    -miss-ratio 1 -fill-misses -mud 100 -fill-ttl -1s -coalesce -workers 32)
echo "$out"

fills=$(echo "$out" | grep '^fills')
misses=$(echo "$fills" | awk '{print $2}')
fetches=$(echo "$fills" | awk '{print $4}')
fanins=$(echo "$fills" | awk '{print $7}')

if [ -z "$misses" ] || [ -z "$fetches" ]; then
    echo "FAIL: could not parse the fills line: $fills" >&2
    exit 1
fi
if [ "$misses" -lt 1000 ]; then
    echo "FAIL: expected a steady miss stream, got $misses misses" >&2
    exit 1
fi
# The herd-protection assertion: coalescing must save the vast majority
# of backend fetches (>= 5x reduction) and account for the rest as
# fan-ins.
if [ $((fetches * 5)) -gt "$misses" ]; then
    echo "FAIL: $fetches db fetches for $misses misses — coalescing saved too little" >&2
    exit 1
fi
if [ $((fetches + fanins)) -ne "$misses" ]; then
    echo "FAIL: fetches($fetches) + fan-ins($fanins) != misses($misses)" >&2
    exit 1
fi

echo "PASS: coalesce smoke ($fetches db fetches for $misses misses, $fanins fanned in)"
