#!/usr/bin/env bash
# obs_smoke.sh — boot memcached-server with the admin plane and check
# that /healthz, /metrics and /trace answer with the expected content.
# Used by the CI verify job; runnable locally from the repo root.
set -euo pipefail

bin=$(mktemp -t memcached-server-smoke.XXXXXX)
go build -o "$bin" ./cmd/memcached-server

addr=127.0.0.1:18211
admin=127.0.0.1:18212
"$bin" -addr "$addr" -admin "$admin" -trace-ring 1024 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -f "$bin"' EXIT INT TERM

ok=0
i=0
while [ "$i" -lt 50 ]; do
    if curl -fsS "http://$admin/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ "$ok" != 1 ]; then
    echo "FAIL: admin plane never answered /healthz" >&2
    exit 1
fi

healthz=$(curl -fsS "http://$admin/healthz")
case $healthz in
*'"status":"ok"'*) ;;
*)
    echo "FAIL: unexpected /healthz body: $healthz" >&2
    exit 1
    ;;
esac

metrics=$(curl -fsS "http://$admin/metrics")
for family in memqlat_server_connections_current memqlat_cache_shard_items \
    memqlat_stage_latency_seconds memqlat_trace_spans_kept; do
    case $metrics in
    *"$family"*) ;;
    *)
        echo "FAIL: /metrics missing family $family" >&2
        exit 1
        ;;
    esac
done

trace=$(curl -fsS "http://$admin/trace")
case $trace in
*'"traceEvents"'*) ;;
*)
    echo "FAIL: unexpected /trace body: $trace" >&2
    exit 1
    ;;
esac

echo "obs smoke OK: /healthz, /metrics ($(printf '%s\n' "$metrics" | wc -l) lines), /trace all answered on $admin"
