#!/usr/bin/env bash
# extstore_smoke.sh — boot a live memcached-server with a 1 MiB RAM
# cache and a tmpdir extstore tier, drive a lognormal-value workload
# whose keyspace overflows RAM (so LRU victims spill into segment
# files), and assert (a) the disk tier actually serves reads and
# (b) a SIGKILLed server recovers its disk index from the segment log
# on restart and keeps serving disk hits.
# Used by the CI verify job; runnable locally from the repo root. On
# failure the segment directory and server logs stay behind in
# ./extstore_smoke_dir for artifact upload.
set -euo pipefail

dir=${EXTSTORE_SMOKE_DIR:-extstore_smoke_dir}
rm -rf "$dir"
mkdir -p "$dir"

srv=$(mktemp -t memcached-server-extstore.XXXXXX)
bench=$(mktemp -t mcbench-extstore.XXXXXX)
go build -o "$srv" ./cmd/memcached-server
go build -o "$bench" ./cmd/mcbench

addr=127.0.0.1:18214
pid=
start_server() {
    # One shard and a small item cap: the per-shard budget floor is
    # MaxItemSize, so many shards would silently inflate the 1 MiB
    # budget past the keyspace and nothing would ever spill.
    "$srv" -addr "$addr" -memory-mb 1 -shards 1 -max-item-kb 64 \
        -extstore-dir "$dir/segments" -extstore-segment-kb 64 >>"$dir/$1" 2>&1 &
    pid=$!
    disown "$pid" 2>/dev/null || true # silence bash's job-kill notice on SIGKILL
    local i=0
    while [ "$i" -lt 50 ]; do
        if "$bench" -servers "$addr" -keys 8 -ops 1 -lambda 100 >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
        i=$((i + 1))
    done
    echo "FAIL: server never answered (log: $dir/$1)" >&2
    exit 1
}
trap 'kill -9 "$pid" 2>/dev/null || true; rm -f "$srv" "$bench"' EXIT INT TERM

start_server server1.log

# ~12k keys of lognormal values (mean 100 B) cost ~2 MiB against a
# 1 MiB RAM cache: populate evicts the early (Zipf-hot) keys to disk,
# so the measured gets must come back through the extstore tier.
drive() {
    "$bench" -servers "$addr" -keys 12000 -value-dist lognormal -zipf 1 \
        -ops "$1" -lambda 30000 -workers 32
}
out=$(drive 6000)
echo "$out"
ext=$(echo "$out" | grep '^extstore' || true)
hits=$(echo "$ext" | awk '{print $2}')
if [ -z "$hits" ]; then
    echo "FAIL: no extstore summary line in the mcbench output" >&2
    exit 1
fi
if [ "$hits" -le 0 ]; then
    echo "FAIL: the disk tier served no reads: $ext" >&2
    exit 1
fi

# Crash: no shutdown path runs, the active segment keeps its torn
# tail. Recovery must rebuild the index from the durable prefix.
kill -9 "$pid"
while kill -0 "$pid" 2>/dev/null; do sleep 0.05; done
start_server server2.log

recovered=$(grep -o '[0-9]* keys recovered' "$dir/server2.log" | head -1 | awk '{print $1}')
if [ -z "$recovered" ] || [ "$recovered" -le 0 ]; then
    echo "FAIL: restart recovered no keys from the segment log" >&2
    cat "$dir/server2.log" >&2
    exit 1
fi

# The reopened tier must still serve reads (the restart emptied RAM,
# so the re-populated keyspace spills and reads back again).
out2=$(drive 3000)
ext2=$(echo "$out2" | grep '^extstore' || true)
hits2=$(echo "$ext2" | awk '{print $2}')
if [ -z "$hits2" ] || [ "$hits2" -le 0 ]; then
    echo "FAIL: no disk hits after crash recovery: $ext2" >&2
    exit 1
fi

kill -9 "$pid" 2>/dev/null || true
rm -rf "$dir"
echo "PASS: extstore smoke ($hits disk hits before the crash, $recovered keys recovered, $hits2 disk hits after)"
