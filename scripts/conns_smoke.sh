#!/usr/bin/env bash
# conns_smoke.sh — boot memcached-server on the epoll event-loop core
# and park 5000 mostly-idle connections on it with mcbench -conns while
# a hot subset issues gets: proves the multiplexed core serves real
# traffic at a connection count goroutine-per-connection CI settings
# never exercise. Used by the CI verify job; runnable locally from the
# repo root (needs a few thousand spare fds; mcbench raises its own
# soft limit, the server side is raised here with ulimit when allowed).
set -euo pipefail

ulimit -n "$(ulimit -Hn)" 2>/dev/null || true

srv=$(mktemp -t memcached-server-conns.XXXXXX)
mcb=$(mktemp -t mcbench-conns.XXXXXX)
go build -o "$srv" ./cmd/memcached-server
go build -o "$mcb" ./cmd/mcbench

conns=5000
addr=127.0.0.1:18213
"$srv" -addr "$addr" -conn-core eventloop -max-conns $((conns + 64)) &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -f "$srv" "$mcb"' EXIT INT TERM

# Wait for the listener.
i=0
while [ "$i" -lt 50 ]; do
    if "$mcb" -servers "$addr" -conns 16 -conn-hot 1 -ops 1 >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done

out=$("$mcb" -servers "$addr" -conns "$conns" -ops 20000 -timeout 2m)
printf '%s\n' "$out"
case $out in
*"conns=$conns"*) ;;
*)
    echo "FAIL: mcbench never reported the conns=$conns tier" >&2
    exit 1
    ;;
esac
echo "conns smoke OK: event-loop server held $conns connections"
