# Developer entry points. `make verify` is the tier-1 gate CI runs.

GO ?= go

.PHONY: build test vet race verify faults lint cover fuzz-smoke \
	bench-plane bench-server bench-proxy bench-check repro clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The live plane and loadgen are timing-sensitive; -race also shakes
# out ordering bugs in the telemetry seam and the server's conn pool.
race:
	$(GO) test -race ./...

verify: build vet test race

# Fault-injection and resilience suite only (client recovery paths,
# sim/live fault threading, cross-plane schedule determinism). -race
# because the interesting bugs here are connection teardown races.
faults:
	$(GO) test -race -run Fault ./...

# Static analysis beyond vet. The analyzers are not vendored; CI
# installs them with `go install` (see .github/workflows/ci.yml).
lint:
	@command -v staticcheck >/dev/null || { \
		echo "staticcheck not found: go install honnef.co/go/tools/cmd/staticcheck@latest"; exit 1; }
	@command -v govulncheck >/dev/null || { \
		echo "govulncheck not found: go install golang.org/x/vuln/cmd/govulncheck@latest"; exit 1; }
	staticcheck ./...
	govulncheck ./...

# Coverage floors for the packages the hot-path rework touches most,
# plus the proxy tier's data plane and routing library. The floors are
# the blessed coverage levels; CI fails if any package drops below its
# floor.
cover:
	$(GO) test -coverprofile=cover_cache.out ./internal/cache/
	$(GO) test -coverprofile=cover_protocol.out ./internal/protocol/
	$(GO) test -coverprofile=cover_proxy.out ./internal/proxy/
	$(GO) test -coverprofile=cover_route.out ./internal/route/
	./scripts/coverfloor.sh cover_cache.out 95.2 internal/cache
	./scripts/coverfloor.sh cover_protocol.out 90.6 internal/protocol
	./scripts/coverfloor.sh cover_proxy.out 82.0 internal/proxy
	./scripts/coverfloor.sh cover_route.out 91.0 internal/route

# Fuzz smoke: 30s over the reusable-buffer parser (ReadCommand and
# Parser.Next must agree byte-for-byte on arbitrary input) and 15s over
# the proxy's forwarding contract (every accepted command's captured
# frame must re-parse identically).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseCommand -fuzztime=30s ./internal/protocol/
	$(GO) test -run '^$$' -fuzz FuzzProxyFrame -fuzztime=15s ./internal/proxy/

# Regenerate the plane-harness baseline (BENCH_plane.json records the
# last blessed numbers).
bench-plane:
	$(GO) test -run '^$$' -bench 'BenchmarkSimPlane|BenchmarkLivePlane' -benchmem -benchtime 3x .

# Server hot-path benchmarks (get/set/multiget at 1/4/16 connections).
# BENCH_server.json records the last blessed numbers.
bench-server:
	$(GO) test -run '^$$' -bench BenchmarkServerHotPath -benchmem ./internal/server/

# Proxy hot-path benchmarks (pipelined get/set passthrough and the
# multiget fork-join through a real proxy + server).
# BENCH_proxy.json records the last blessed numbers.
bench-proxy:
	$(GO) test -run '^$$' -bench BenchmarkProxyHotPath -benchmem ./internal/proxy/

# Compare current benchmark runs against the checked-in baselines the
# way CI does: >20% ns/op regression or any allocation appearing on a
# zero-alloc path fails.
bench-check:
	$(GO) test -run '^$$' -bench BenchmarkServerHotPath -benchmem ./internal/server/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_server.json
	$(GO) test -run '^$$' -bench BenchmarkProxyHotPath -benchmem ./internal/proxy/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_proxy.json
	$(GO) test -run '^$$' -bench 'BenchmarkSimPlane|BenchmarkLivePlane' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_plane.json

repro:
	$(GO) run ./cmd/repro -run all

clean:
	$(GO) clean ./...
