# Developer entry points. `make verify` is the tier-1 gate CI runs.

GO ?= go

.PHONY: build test vet race verify faults bench-plane repro clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The live plane and loadgen are timing-sensitive; -race also shakes
# out ordering bugs in the telemetry seam and the server's conn pool.
race:
	$(GO) test -race ./...

verify: build vet test race

# Fault-injection and resilience suite only (client recovery paths,
# sim/live fault threading, cross-plane schedule determinism). -race
# because the interesting bugs here are connection teardown races.
faults:
	$(GO) test -race -run Fault ./...

# Regenerate the plane-harness baseline (BENCH_plane.json records the
# last blessed numbers).
bench-plane:
	$(GO) test -run '^$$' -bench 'BenchmarkSimPlane|BenchmarkLivePlane' -benchtime 3x .

repro:
	$(GO) run ./cmd/repro -run all

clean:
	$(GO) clean ./...
