# Developer entry points. `make verify` is the tier-1 gate CI runs.

GO ?= go

.PHONY: build test vet race verify faults lint cover fuzz-smoke \
	bench-plane bench-server bench-proxy bench-conns bench-extstore \
	bench-slo bench-check obs slo repro clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The live plane and loadgen are timing-sensitive; -race also shakes
# out ordering bugs in the telemetry seam and the server's conn pool.
race:
	$(GO) test -race ./...

verify: build vet test race

# Fault-injection and resilience suite only (client recovery paths,
# sim/live fault threading, cross-plane schedule determinism). -race
# because the interesting bugs here are connection teardown races.
faults:
	$(GO) test -race -run Fault ./...

# Static analysis beyond vet. The analyzers are not vendored; CI
# installs them with `go install` (see .github/workflows/ci.yml).
lint:
	@command -v staticcheck >/dev/null || { \
		echo "staticcheck not found: go install honnef.co/go/tools/cmd/staticcheck@2024.1.1"; exit 1; }
	@command -v govulncheck >/dev/null || { \
		echo "govulncheck not found: go install golang.org/x/vuln/cmd/govulncheck@v1.1.4"; exit 1; }
	staticcheck ./...
	govulncheck ./...

# Coverage floors for the packages the hot-path rework touches most,
# plus the proxy tier's data plane and routing library. The floors are
# the blessed coverage levels; CI fails if any package drops below its
# floor.
cover:
	$(GO) test -coverprofile=cover_cache.out ./internal/cache/
	$(GO) test -coverprofile=cover_protocol.out ./internal/protocol/
	$(GO) test -coverprofile=cover_proxy.out ./internal/proxy/
	$(GO) test -coverprofile=cover_route.out ./internal/route/
	$(GO) test -coverprofile=cover_otrace.out ./internal/otrace/
	$(GO) test -coverprofile=cover_metrics.out ./internal/metrics/
	$(GO) test -coverprofile=cover_server.out ./internal/server/
	$(GO) test -coverprofile=cover_coalesce.out ./internal/coalesce/
	$(GO) test -coverprofile=cover_tenant.out ./internal/tenant/
	$(GO) test -coverprofile=cover_extstore.out ./internal/extstore/
	$(GO) test -coverprofile=cover_sketch.out ./internal/sketch/
	$(GO) test -coverprofile=cover_slo.out ./internal/slo/
	./scripts/coverfloor.sh cover_cache.out 95.2 internal/cache
	./scripts/coverfloor.sh cover_protocol.out 90.6 internal/protocol
	./scripts/coverfloor.sh cover_proxy.out 82.0 internal/proxy
	./scripts/coverfloor.sh cover_route.out 91.0 internal/route
	./scripts/coverfloor.sh cover_otrace.out 95.0 internal/otrace
	./scripts/coverfloor.sh cover_metrics.out 90.0 internal/metrics
	./scripts/coverfloor.sh cover_server.out 77.0 internal/server
	./scripts/coverfloor.sh cover_coalesce.out 90.0 internal/coalesce
	./scripts/coverfloor.sh cover_tenant.out 90.0 internal/tenant
	./scripts/coverfloor.sh cover_extstore.out 85.0 internal/extstore
	./scripts/coverfloor.sh cover_sketch.out 90.0 internal/sketch
	./scripts/coverfloor.sh cover_slo.out 85.0 internal/slo

# Fuzz smoke: 30s over the reusable-buffer parser (ReadCommand and
# Parser.Next must agree byte-for-byte on arbitrary input), 15s over
# the proxy's forwarding contract (every accepted command's captured
# frame must re-parse identically) and 15s over the Chrome trace-event
# decoder (ParseChrome must never panic and must round-trip WriteChrome
# output).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseCommand -fuzztime=30s ./internal/protocol/
	$(GO) test -run '^$$' -fuzz FuzzProxyFrame -fuzztime=15s ./internal/proxy/
	$(GO) test -run '^$$' -fuzz FuzzChromeTrace -fuzztime=15s ./internal/otrace/

# Regenerate the plane-harness baseline (BENCH_plane.json records the
# last blessed numbers).
bench-plane:
	$(GO) test -run '^$$' -bench 'BenchmarkSimPlane|BenchmarkLivePlane' -benchmem -benchtime 3x .

# Server hot-path benchmarks (get/set/multiget at 1/4/16 connections).
# BENCH_server.json records the last blessed numbers.
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkServerHotPath|BenchmarkCoalescedMiss' -benchmem ./internal/server/

# Proxy hot-path benchmarks (pipelined get/set passthrough, the
# multiget fork-join through a real proxy + server, and the tenant QoS
# admission check, which must stay zero-alloc on both the admitted and
# the shed path). BENCH_proxy.json records the last blessed numbers.
bench-proxy:
	$(GO) test -run '^$$' -bench 'BenchmarkProxyHotPath|BenchmarkProxyQoS' -benchmem ./internal/proxy/

# Connection-count scaling (1k -> 100k parked connections on the
# event-loop core; tiers beyond the fd limit skip). The fixed -benchtime
# runs the expensive fleet setup once per scale instead of once per b.N
# probe. BENCH_conns.json records the last blessed numbers.
bench-conns:
	$(GO) test -run '^$$' -bench BenchmarkConnScaling -benchmem \
		-benchtime 500000x ./internal/server/

# Extstore disk-tier benchmarks (indexed read path against a populated
# segment log, and the bounded sync write path). BENCH_extstore.json
# records the last blessed numbers.
bench-extstore:
	$(GO) test -run '^$$' -bench 'BenchmarkExtstoreRead|BenchmarkExtstoreWrite' -benchmem ./internal/extstore/

# SLO watchdog benchmarks: the sketch's per-observation record cost
# (must stay zero-alloc — it rides the telemetry hot path) and the
# per-window watchdog tick. BENCH_slo.json records the last blessed
# numbers.
bench-slo:
	$(GO) test -run '^$$' -bench 'BenchmarkSketchRecord|BenchmarkWatchdogTick' -benchmem \
		./internal/sketch/ ./internal/slo/

# Compare current benchmark runs against the checked-in baselines the
# way CI does: >20% ns/op regression or any allocation appearing on a
# zero-alloc path fails.
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkServerHotPath|BenchmarkCoalescedMiss' -benchmem ./internal/server/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_server.json
	$(GO) test -run '^$$' -bench 'BenchmarkProxyHotPath|BenchmarkProxyQoS' -benchmem ./internal/proxy/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_proxy.json
	$(GO) test -run '^$$' -bench 'BenchmarkSimPlane|BenchmarkLivePlane' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_plane.json
	$(GO) test -run '^$$' -bench BenchmarkConnScaling -benchmem \
		-benchtime 500000x ./internal/server/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_conns.json
	$(GO) test -run '^$$' -bench 'BenchmarkExtstoreRead|BenchmarkExtstoreWrite' -benchmem ./internal/extstore/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_extstore.json
	$(GO) test -run '^$$' -bench 'BenchmarkSketchRecord|BenchmarkWatchdogTick' -benchmem \
		./internal/sketch/ ./internal/slo/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_slo.json

# Observability smoke: a short live-plane run with the admin plane and
# span recording armed (mcbench re-parses the Chrome trace it wrote and
# fails the run if it is malformed), the in-process /metrics + /healthz
# scrape test, and the benchdiff gates that prove the server and proxy
# hot paths stay zero-alloc while tracing/metrics are compiled in but
# disabled.
obs:
	$(GO) run ./cmd/mcbench -plane=live -plane-servers 2 -lambda 2000 \
		-mus 2000 -n 10 -ops 1200 -miss-ratio 0.02 -seed 7 \
		-admin 127.0.0.1:0 -trace-ring 8192 -trace-out obs_trace.json -slow 250ms
	rm -f obs_trace.json
	$(GO) test -run TestObservabilitySmoke -count=1 ./cmd/mcbench/
	$(GO) test -run '^$$' -bench 'BenchmarkServerHotPath|BenchmarkCoalescedMiss' -benchmem ./internal/server/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_server.json
	$(GO) test -run '^$$' -bench BenchmarkProxyHotPath -benchmem ./internal/proxy/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_proxy.json

# SLO watchdog smoke: the drift experiment (sim determinism + live
# detection + healthy-ramp false-alarm sweep), the shell smoke (server
# overload attribution on /debug/watch, exemplars, live-plane db fault)
# and the sketch/watchdog benchdiff gate.
slo:
	$(GO) test -run TestDrift -count=1 -v ./internal/experiments/
	./scripts/slo_smoke.sh
	$(GO) test -run '^$$' -bench 'BenchmarkSketchRecord|BenchmarkWatchdogTick' -benchmem \
		./internal/sketch/ ./internal/slo/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_slo.json

repro:
	$(GO) run ./cmd/repro -run all

clean:
	$(GO) clean ./...
