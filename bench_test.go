// Benchmarks: one per paper table/figure (regenerating the artifact end
// to end, so ns/op measures the cost of a full reproduction at bench
// budget) plus micro-benchmarks of the hot substrate paths.
package memqlat_test

import (
	"context"
	"fmt"
	"testing"

	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/core"
	"memqlat/internal/dist"
	"memqlat/internal/experiments"
	"memqlat/internal/plane"
	"memqlat/internal/protocol"
	"memqlat/internal/queueing"
	"memqlat/internal/sim"
	"memqlat/internal/stats"
	"memqlat/internal/workload"

	"bufio"
	"strings"
)

// benchBudget keeps each experiment iteration around a second.
var benchBudget = experiments.Budget{Requests: 500, KeysPerServer: 30000, Seed: 1}

func runExperiment(b *testing.B, run func(experiments.Budget) (*experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		report, err := run(benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		if len(report.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable3BasicValidation(b *testing.B)  { runExperiment(b, experiments.Table3) }
func BenchmarkFig4QuantileBounds(b *testing.B)     { runExperiment(b, experiments.Fig4) }
func BenchmarkFig5ConcurrencySweep(b *testing.B)   { runExperiment(b, experiments.Fig5) }
func BenchmarkFig6BurstSweep(b *testing.B)         { runExperiment(b, experiments.Fig6) }
func BenchmarkFig7ArrivalRateSweep(b *testing.B)   { runExperiment(b, experiments.Fig7) }
func BenchmarkFig8TheoryByBurst(b *testing.B)      { runExperiment(b, experiments.Fig8) }
func BenchmarkFig9ServiceRateSweep(b *testing.B)   { runExperiment(b, experiments.Fig9) }
func BenchmarkFig10LoadImbalance(b *testing.B)     { runExperiment(b, experiments.Fig10) }
func BenchmarkFig11MissRatioSweep(b *testing.B)    { runExperiment(b, experiments.Fig11) }
func BenchmarkFig12KeysPerRequestTS(b *testing.B)  { runExperiment(b, experiments.Fig12) }
func BenchmarkFig13KeysPerRequestTD(b *testing.B)  { runExperiment(b, experiments.Fig13) }
func BenchmarkTable4CliffUtilization(b *testing.B) { runExperiment(b, experiments.Table4) }
func BenchmarkProp1Bounds(b *testing.B)            { runExperiment(b, experiments.Prop1) }
func BenchmarkProp2ScaleInvariance(b *testing.B)   { runExperiment(b, experiments.Prop2) }
func BenchmarkExtTailQuantiles(b *testing.B)       { runExperiment(b, experiments.ExtTails) }
func BenchmarkExtArrivalFamilies(b *testing.B)     { runExperiment(b, experiments.ExtArrivals) }
func BenchmarkExtEq6Ablation(b *testing.B)         { runExperiment(b, experiments.ExtEq6Ablation) }
func BenchmarkExtRedundancy(b *testing.B)          { runExperiment(b, experiments.ExtRedundancy) }
func BenchmarkExtIntegrated(b *testing.B)          { runExperiment(b, experiments.ExtIntegrated) }
func BenchmarkExtElasticity(b *testing.B)          { runExperiment(b, experiments.ExtElasticity) }
func BenchmarkLiveStack(b *testing.B)              { runExperiment(b, experiments.Live) }

// ---- plane harness benchmarks (baseline in BENCH_plane.json) ----

// BenchmarkSimPlane measures a full simulator-plane evaluation of the
// Facebook workload at bench budget: scenario lowering, the composition
// simulation with telemetry recording, and the §4.5 estimators.
func BenchmarkSimPlane(b *testing.B) {
	s := plane.FromConfig("facebook", workload.Facebook())
	s.Requests = benchBudget.Requests
	s.KeysPerServer = benchBudget.KeysPerServer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed = benchBudget.Seed + uint64(i)
		res, err := plane.SimPlane{}.Run(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Breakdown.Empty() {
			b.Fatal("no telemetry recorded")
		}
	}
}

// BenchmarkLivePlane measures a full live-TCP-plane evaluation at
// scaled rates: cluster bring-up, populate, paced load, teardown.
// ns/op is dominated by the paced open-loop run (ops/λ seconds).
func BenchmarkLivePlane(b *testing.B) {
	s := plane.Scenario{
		Name:         "bench",
		N:            1,
		LoadRatios:   core.BalancedLoad(2),
		TotalKeyRate: 4000,
		Q:            0.1,
		Xi:           0.15,
		MuS:          4000,
		MissRatio:    0.01,
		MuD:          1000,
		Ops:          500,
		Workers:      32,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed = benchBudget.Seed + uint64(i)
		res, err := plane.LivePlane{}.Run(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Live.Issued == 0 {
			b.Fatal("no operations issued")
		}
	}
}

// ---- micro-benchmarks of the substrate hot paths ----

func BenchmarkDeltaSolverGP(b *testing.B) {
	gp, err := dist.NewGeneralizedPareto(workload.FacebookXi, 56250)
	if err != nil {
		b.Fatal(err)
	}
	bq, err := queueing.NewBatchQueue(gp, 0.1, 80000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bq.Delta(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem1Estimate(b *testing.B) {
	model := workload.Facebook()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Estimate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCliffUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.CliffUtilization(0.15, 0.1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerSimLindley(b *testing.B) {
	gp, err := dist.NewGeneralizedPareto(0.15, 56250)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.SimulateServer(sim.ServerConfig{
			Interarrival: gp, Q: 0.1, MuS: 80000, Keys: 10000, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Mean()
	}
}

func BenchmarkCacheSet(b *testing.B) {
	c, err := cache.New(cache.Options{MaxBytes: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%d", i)
	}
	value := []byte(strings.Repeat("v", 100))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set(keys[i%len(keys)], value, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c, err := cache.New(cache.Options{MaxBytes: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	value := []byte(strings.Repeat("v", 100))
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%d", i)
		if err := c.Set(keys[i], value, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolParseSet(b *testing.B) {
	raw := "set somekey 42 0 100\r\n" + strings.Repeat("v", 100) + "\r\n"
	big := strings.Repeat(raw, 64)
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bufio.NewReader(strings.NewReader(big))
		for j := 0; j < 64; j++ {
			if _, err := protocol.ReadCommand(r); err != nil {
				b.Fatal(err)
			}
		}
		i += 63
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := stats.NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(float64(i%1000) * 1e-6)
	}
}

func BenchmarkRingSelectorPick(b *testing.B) {
	ring, err := client.NewRingSelector(16, 160)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("pick-key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ring.Pick(keys[i%len(keys)])
	}
}

func BenchmarkGeneralizedParetoSample(b *testing.B) {
	gp, err := dist.NewGeneralizedPareto(0.15, 62500)
	if err != nil {
		b.Fatal(err)
	}
	rng := dist.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gp.Sample(rng)
	}
}

func BenchmarkLaplaceTransformGP(b *testing.B) {
	gp, err := dist.NewGeneralizedPareto(0.15, 62500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gp.LaplaceTransform(20000)
	}
}
