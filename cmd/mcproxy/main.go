// Command mcproxy runs the memqlat proxy tier: an mcrouter-style
// memcached proxy that multiplexes many client connections onto a small
// pool of pipelined upstream connections per server, routing keys with
// the same ketama ring the client uses.
//
// Example in front of two servers:
//
//	mcproxy -listen :11210 -servers 127.0.0.1:11211,127.0.0.1:11212
//
// -policy selects the routing mode: direct (plain consistent hashing),
// failover (circuit-broken retargeting to the next ring successor), or
// replicate (writes fan out to -replicas owners, reads race them).
// Point any memcached text-protocol client at -listen; `stats` answers
// with proxy counters before the upstream stats.
//
// -admin exposes the observability plane on a second listener:
// /metrics (forwarding counters, per-upstream queue depth, breaker
// states), /healthz, /debug/pprof and — with -trace-ring — /trace, the
// proxy-hop spans of in-band-traced requests as Chrome trace JSON.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memqlat/internal/metrics"
	"memqlat/internal/otrace"
	"memqlat/internal/plane"
	"memqlat/internal/proxy"
	"memqlat/internal/slo"
	"memqlat/internal/tenant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcproxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mcproxy", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:11210", "listen address")
		servers   = fs.String("servers", "127.0.0.1:11211", "comma-separated upstream memcached addresses")
		policy    = fs.String("policy", "direct", "routing policy (direct|failover|replicate)")
		replicas  = fs.Int("replicas", 2, "replication degree for -policy=replicate")
		conns     = fs.Int("upstream-conns", 2, "pipelined connections per upstream server")
		adminAddr = fs.String("admin", "", "observability listener address for /metrics, /healthz, /debug/pprof (empty = off)")
		traceRing = fs.Int("trace-ring", 0, "retain this many proxy-hop spans of in-band-traced requests, served on <admin>/trace (0 = off)")
		tenants   = fs.String("tenants", "", `tenant QoS specs, e.g. "acme:class=gold,rate=500;evil:rate=200,share=0.5" (empty = QoS off)`)
		sloSpec   = fs.String("slo", "", "arm the model-anchored SLO watchdog on the proxy_hop stage, e.g. 'lambda=2000,mus=8000,window=1s,k=2' (needs lambda and mus; empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pol, err := proxy.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	var tracer *otrace.Tracer
	if *traceRing > 0 {
		tracer = otrace.New(otrace.Options{RingSize: *traceRing})
	}
	var lim *tenant.Limiter
	if *tenants != "" {
		specs, err := tenant.ParseSpecs(*tenants)
		if err != nil {
			return err
		}
		if lim, err = tenant.New(specs); err != nil {
			return err
		}
	}
	// The watchdog judges the proxy_hop stage against the single
	// GI^X/M/1 band the -slo parameters imply, on wall-clock rolling
	// windows from process start.
	var wd *slo.Watchdog
	if *sloSpec != "" {
		cfg, m, err := slo.ParseSpec(*sloSpec)
		if err != nil {
			return err
		}
		cfg.Predicted, err = plane.ProxyHopBand(m)
		if err != nil {
			return err
		}
		cfg.AlertWriter = os.Stderr
		if wd, err = slo.NewWatchdog(cfg); err != nil {
			return err
		}
	}
	popts := proxy.Options{
		Upstreams:     strings.Split(*servers, ","),
		Policy:        pol,
		Replicas:      *replicas,
		UpstreamConns: *conns,
		Tracer:        tracer,
		Tenants:       lim,
		Logger:        log.New(os.Stderr, "mcproxy: ", log.LstdFlags),
	}
	if wd != nil {
		popts.Recorder = wd
	}
	p, err := proxy.New(popts)
	if err != nil {
		return err
	}
	if wd != nil {
		wd.Arm()
		start := time.Now()
		go func() {
			t := time.NewTicker(time.Duration(wd.Window() * float64(time.Second)))
			defer t.Stop()
			for range t.C {
				wd.Advance(time.Since(start).Seconds())
			}
		}()
		log.Printf("mcproxy: slo watchdog armed (window %gs, alerts on stderr)", wd.Window())
	}
	if *adminAddr != "" {
		reg := metrics.NewRegistry()
		metrics.RegisterProxy(reg, p)
		metrics.RegisterTenants(reg, lim)
		metrics.RegisterTracer(reg, tracer)
		metrics.RegisterSLO(reg, wd)
		admin := metrics.NewAdmin(reg)
		if tracer.Enabled() {
			admin.AttachTracer(tracer)
		}
		if wd != nil {
			admin.Handle("/debug/watch", wd)
		}
		aaddr, err := admin.Start(*adminAddr)
		if err != nil {
			return err
		}
		defer func() { _ = admin.Close() }()
		log.Printf("mcproxy: admin plane on http://%s/metrics", aaddr)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- p.Serve(l) }()
	log.Printf("mcproxy: listening on %s, %s routing over %s",
		l.Addr(), pol, *servers)

	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("mcproxy: %v, shutting down", s)
		if err := p.Close(); err != nil {
			return err
		}
		<-errCh
		return nil
	}
}
