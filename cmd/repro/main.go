// Command repro regenerates the paper's tables and figures. Every
// experiment evaluates its scenarios on the internal/plane harness;
// `-run crossplane` prints one scenario through every deterministic
// plane side by side.
//
// Usage:
//
//	repro [-run all|table3|fig4|...|crossplane|live] [-full] [-seed N] [-list]
//
// With -full the sample sizes approach the paper's 10-minute testbed
// runs; the default "quick" budget finishes in seconds per experiment.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"memqlat/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		runID  = fs.String("run", "all", "experiment id to run, or 'all'")
		full   = fs.Bool("full", false, "use the full (paper-scale) measurement budget")
		seed   = fs.Uint64("seed", 1, "random seed")
		list   = fs.Bool("list", false, "list experiment ids and exit")
		csvDir = fs.String("csv", "", "also write each report as <dir>/<id>.csv for plotting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	budget := experiments.Quick
	if *full {
		budget = experiments.Full
	}
	budget.Seed = *seed

	var toRun []experiments.Experiment
	if *runID == "all" {
		toRun = experiments.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			toRun = append(toRun, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, e := range toRun {
		report, err := e.Run(budget)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(out, report.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, report.ID+".csv")
			if err := os.WriteFile(path, []byte(report.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
		}
	}
	return nil
}
