package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table3", "fig7", "table4", "live"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "bogus"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "prop2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Proposition 2") {
		t.Errorf("output missing report: %s", buf.String())
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "prop2,table4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "prop2") || !strings.Contains(out, "table4") {
		t.Error("comma-separated run incomplete")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-run", "prop2", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "prop2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "scale c,") {
		t.Errorf("csv header = %q", lines[0])
	}
}
