// Command mrc computes a miss-ratio curve from a key-access trace and
// (optionally) feeds the resulting miss ratio into the Theorem 1
// latency model.
//
// Input is either the memqlat trace format ("<offset-ns> <key>" per
// line, as written by mcbench -trace) or bare keys one per line; use
// "-" for stdin.
//
// Examples:
//
//	mrc -in trace.txt -capacities 1000,5000,10000
//	mrc -in keys.txt -target-miss 0.01
//	mrc -in trace.txt -latency          # MRC rows + Theorem 1 latency
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"memqlat/internal/mrc"
	"memqlat/internal/trace"
	"memqlat/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mrc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("mrc", flag.ContinueOnError)
	var (
		in         = fs.String("in", "-", "trace file ('-' = stdin)")
		capacities = fs.String("capacities", "", "comma-separated capacities to evaluate (default: auto grid)")
		targetMiss = fs.Float64("target-miss", 0, "report the capacity achieving this miss ratio")
		latency    = fs.Bool("latency", false, "also evaluate Theorem 1 at each capacity's miss ratio (Facebook workload parameters)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src io.Reader = stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		src = f
	}
	analyzer, err := ingest(src)
	if err != nil {
		return err
	}
	curve, err := analyzer.Curve()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "accesses: %d   distinct keys: %d   compulsory floor: %.3f%%\n\n",
		analyzer.Accesses(), analyzer.UniqueKeys(), curve.ColdMissRatio()*100)

	caps, err := capacityGrid(*capacities, curve.UniqueKeys())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-12s  %-10s", "capacity", "miss r")
	if *latency {
		fmt.Fprintf(out, "  %-12s", "E[TD(N)]")
	}
	fmt.Fprintln(out)
	for _, c := range caps {
		r := curve.MissRatio(c)
		fmt.Fprintf(out, "%-12d  %-10s", c, fmt.Sprintf("%.3f%%", r*100))
		if *latency {
			model := workload.Facebook()
			model.MissRatio = r
			td, err := model.ExpectedTD()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %-12s", fmt.Sprintf("%.0fµs", td*1e6))
		}
		fmt.Fprintln(out)
	}

	if *targetMiss > 0 {
		capNeeded, err := curve.CapacityForMissRatio(*targetMiss)
		if err != nil {
			fmt.Fprintf(out, "\ntarget %.3f%%: %v\n", *targetMiss*100, err)
			return nil
		}
		fmt.Fprintf(out, "\ntarget %.3f%% miss ratio: capacity >= %d items\n",
			*targetMiss*100, capNeeded)
	}
	return nil
}

// ingest accepts the trace format or bare keys, one per line.
func ingest(src io.Reader) (*mrc.Analyzer, error) {
	analyzer := mrc.NewAnalyzer()
	scanner := bufio.NewScanner(src)
	scanner.Buffer(make([]byte, 64<<10), 64<<10)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch len(fields) {
		case 1:
			analyzer.Add(fields[0])
		case 2:
			// trace format: "<offset-ns> <key>"
			if _, err := strconv.ParseInt(fields[0], 10, 64); err != nil {
				return nil, fmt.Errorf("%w: line %d: %q", trace.ErrSyntax, lineNo, line)
			}
			analyzer.Add(fields[1])
		default:
			return nil, fmt.Errorf("%w: line %d: %q", trace.ErrSyntax, lineNo, line)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if analyzer.Accesses() == 0 {
		return nil, errors.New("mrc: no accesses in input")
	}
	return analyzer, nil
}

// capacityGrid parses -capacities or builds a geometric default grid.
func capacityGrid(spec string, uniques int) ([]int, error) {
	if spec != "" {
		var out []int
		for _, tok := range strings.Split(spec, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 0 {
				return nil, fmt.Errorf("mrc: bad capacity %q", tok)
			}
			out = append(out, v)
		}
		return out, nil
	}
	var out []int
	for c := 16; c < uniques; c *= 4 {
		out = append(out, c)
	}
	return append(out, uniques), nil
}
