package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBareKeysFromStdin(t *testing.T) {
	in := strings.NewReader("a\nb\na\nb\na\n")
	var out bytes.Buffer
	if err := run([]string{"-capacities", "1,2"}, in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "accesses: 5") || !strings.Contains(s, "distinct keys: 2") {
		t.Errorf("summary wrong:\n%s", s)
	}
	// Capacity 2 holds both keys: only the 2 cold misses -> 40%.
	if !strings.Contains(s, "40.000%") {
		t.Errorf("capacity-2 miss ratio missing:\n%s", s)
	}
}

func TestRunTraceFormatFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.txt")
	var sb strings.Builder
	sb.WriteString("# recorded by mcbench\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "%d key-%d\n", i*1000, i%10)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-target-miss", "0.2"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "capacity >= ") {
		t.Errorf("target capacity missing:\n%s", out.String())
	}
}

func TestRunLatencyColumn(t *testing.T) {
	in := strings.NewReader(strings.Repeat("x\ny\nz\n", 50))
	var out bytes.Buffer
	if err := run([]string{"-capacities", "3", "-latency"}, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E[TD(N)]") {
		t.Errorf("latency column missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("empty input accepted")
	}
	if err := run(nil, strings.NewReader("a b c\n"), &out); err == nil {
		t.Error("three-field line accepted")
	}
	if err := run(nil, strings.NewReader("notanumber key\n"), &out); err == nil {
		t.Error("bad offset accepted")
	}
	if err := run([]string{"-capacities", "x"}, strings.NewReader("a\n"), &out); err == nil {
		t.Error("bad capacity list accepted")
	}
	if err := run([]string{"-in", "/does/not/exist"}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-bogus"}, nil, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnreachableTarget(t *testing.T) {
	// All-distinct keys: floor is 100%, so any target is unreachable —
	// reported in output, not an error.
	in := strings.NewReader("a\nb\nc\n")
	var out bytes.Buffer
	if err := run([]string{"-target-miss", "0.01"}, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "below compulsory floor") {
		t.Errorf("floor message missing:\n%s", out.String())
	}
}
