package main

import (
	"bytes"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"memqlat/internal/otrace"

	"memqlat/internal/cache"
	"memqlat/internal/server"
	"memqlat/internal/trace"
)

func startTestServer(t *testing.T) string {
	t.Helper()
	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Cache: c, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

func TestRunAgainstLiveServer(t *testing.T) {
	addr := startTestServer(t)
	var out bytes.Buffer
	args := []string{
		"-servers", addr,
		"-keys", "200",
		"-ops", "500",
		"-lambda", "50000",
		"-workers", "8",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"issued", "500 ops", "hits", "latency", "p99"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, " 0 hits") {
		t.Errorf("no hits recorded:\n%s", s)
	}
}

func TestRunWithFillMisses(t *testing.T) {
	addr := startTestServer(t)
	var out bytes.Buffer
	args := []string{
		"-servers", addr,
		"-keys", "100",
		"-ops", "300",
		"-lambda", "50000",
		"-miss-ratio", "0.3",
		"-fill-misses",
		"-mud", "100000",
		"-workers", "8",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "misses") {
		t.Errorf("output missing miss accounting:\n%s", out.String())
	}
}

func TestRunSimPlane(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-plane", "sim",
		"-lambda", "250000", "-mus", "80000", "-plane-servers", "4",
		"-n", "150", "-miss-ratio", "0.01", "-ops", "1000",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"sim plane", "E[T(N)]", "breakdown",
		"queue_wait", "service", "miss_penalty", "fork_join", "p99"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunModelPlane(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-plane", "model",
		"-lambda", "250000", "-mus", "80000", "-plane-servers", "4",
		"-n", "150", "-miss-ratio", "0.01",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The model plane has no sample — only bounds plus the analytic
	// stage decomposition.
	for _, want := range []string{"model plane", "E[T(N)]", "~", "breakdown", "queue_wait"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "p99.9") {
		t.Errorf("model plane printed sample percentiles:\n%s", s)
	}
}

func TestRunLivePlane(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane needs real time")
	}
	var out bytes.Buffer
	args := []string{
		"-plane", "live",
		"-lambda", "2000", "-mus", "2000", "-plane-servers", "2",
		"-ops", "400", "-miss-ratio", "0.01",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"live plane", "issued", "hits", "breakdown", "service"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSimPlaneExtstore(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-plane", "sim",
		"-lambda", "20000", "-mus", "80000", "-plane-servers", "2",
		"-n", "10", "-miss-ratio", "0.37", "-ops", "1000",
		"-keys", "2000", "-hot-zipf", "1",
		"-extstore", "ram=200,total=1200,mud=2000",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"extstore", "disk hits", "β pred", "disk_read"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "0 disk hits") {
		t.Errorf("tiered sim run served no disk hits:\n%s", s)
	}
}

func TestParseExtstoreSpec(t *testing.T) {
	spec, err := parseExtstoreSpec("ram=200, total=1200,mudisk=2000,dist=lognormal,sigma=0.7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.RAMItems != 200 || spec.TotalItems != 1200 || spec.MuDisk != 2000 ||
		spec.DiskDist != "lognormal" || spec.DiskSigma != 0.7 {
		t.Errorf("parsed %+v", spec)
	}
	for _, bad := range []string{"ram", "ram=", "ram=x", "watts=3"} {
		if _, err := parseExtstoreSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if spec, err := parseExtstoreSpec(""); spec != nil || err != nil {
		t.Errorf("empty spec: %+v, %v", spec, err)
	}
}

func TestRunValueDist(t *testing.T) {
	addr := startTestServer(t)
	var out bytes.Buffer
	args := []string{
		"-servers", addr,
		"-keys", "200", "-ops", "300", "-lambda", "50000", "-workers", "8",
		"-value-dist", "lognormal", "-value-sigma", "0.6",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), " 0 hits") {
		t.Errorf("no hits recorded:\n%s", out.String())
	}
	// The external path has no extstore tier, so no summary line.
	if strings.Contains(out.String(), "extstore") {
		t.Errorf("extstore summary on a tierless run:\n%s", out.String())
	}
	if err := run([]string{"-servers", addr, "-value-dist", "pareto", "-ops", "10"}, &out); err == nil {
		t.Error("unknown value dist accepted")
	}
	if err := run([]string{"-servers", addr, "-extstore", "ram=1,total=2,mud=1"}, &out); err == nil {
		t.Error("-extstore without -plane accepted")
	}
}

func TestRunUnknownPlane(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-plane", "quantum"}, &out); err == nil {
		t.Error("unknown plane accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	// Unreachable server: Populate must fail with an error, not hang.
	if err := run([]string{"-servers", "127.0.0.1:1", "-ops", "10", "-keys", "5"}, &out); err == nil {
		t.Error("dead server accepted")
	}
}

func TestRunWithTraceJournal(t *testing.T) {
	addr := startTestServer(t)
	dir := t.TempDir()
	path := dir + "/run.trace"
	var out bytes.Buffer
	args := []string{
		"-servers", addr,
		"-keys", "50",
		"-ops", "200",
		"-lambda", "50000",
		"-workers", "4",
		"-trace", path,
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := trace.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 200 {
		t.Errorf("journaled %d records, want 200", len(records))
	}
	for i := 1; i < len(records); i++ {
		if records[i].Offset < records[i-1].Offset {
			t.Fatal("trace offsets not monotone")
		}
	}
}

// adminProbe watches run()'s output for the admin-plane banner and
// scrapes /metrics and /healthz the moment it appears — while the run
// is still alive, the way an operator's Prometheus would.
type adminProbe struct {
	bytes.Buffer
	t       *testing.T
	metrics string
	healthz string
}

var adminBanner = regexp.MustCompile(`admin plane on http://([^/\s]+)/metrics`)

func (p *adminProbe) Write(b []byte) (int, error) {
	n, err := p.Buffer.Write(b)
	if p.metrics == "" {
		if m := adminBanner.FindSubmatch(p.Buffer.Bytes()); m != nil {
			base := "http://" + string(m[1])
			p.metrics = p.get(base + "/metrics")
			p.healthz = p.get(base + "/healthz")
		}
	}
	return n, err
}

func (p *adminProbe) get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		p.t.Errorf("GET %s: %v", url, err)
		return "unreachable"
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		p.t.Errorf("GET %s: read: %v", url, err)
		return "unreadable"
	}
	return string(body)
}

// TestObservabilitySmoke is the end-to-end acceptance check: a live
// run with -admin and -trace-out serves a scrapeable metrics page and
// produces a Chrome-loadable trace file.
func TestObservabilitySmoke(t *testing.T) {
	addr := startTestServer(t)
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	probe := &adminProbe{t: t}
	args := []string{
		"-servers", addr,
		"-keys", "100",
		"-ops", "300",
		"-lambda", "50000",
		"-workers", "8",
		"-admin", "127.0.0.1:0",
		"-trace-out", traceFile,
	}
	if err := run(args, probe); err != nil {
		t.Fatal(err)
	}
	out := probe.String()
	if !strings.Contains(out, "spans written to "+traceFile) {
		t.Errorf("output missing trace summary:\n%s", out)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	n, err := otrace.ParseChrome(data)
	if err != nil {
		t.Fatalf("trace file does not parse as Chrome trace JSON: %v", err)
	}
	if n == 0 {
		t.Error("trace file holds no events")
	}
	if probe.metrics == "" {
		t.Fatal("admin banner never appeared; /metrics not scraped")
	}
	for _, want := range []string{
		"memqlat_client_pool_idle",
		"memqlat_stage_latency_seconds",
		"memqlat_trace_spans_kept",
	} {
		if !strings.Contains(probe.metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(probe.healthz, `"status":"ok"`) {
		t.Errorf("/healthz = %q, want status ok", probe.healthz)
	}
}
