package main

import (
	"bytes"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"testing"

	"memqlat/internal/cache"
	"memqlat/internal/server"
	"memqlat/internal/trace"
)

func startTestServer(t *testing.T) string {
	t.Helper()
	c, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Cache: c, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

func TestRunAgainstLiveServer(t *testing.T) {
	addr := startTestServer(t)
	var out bytes.Buffer
	args := []string{
		"-servers", addr,
		"-keys", "200",
		"-ops", "500",
		"-lambda", "50000",
		"-workers", "8",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"issued", "500 ops", "hits", "latency", "p99"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, " 0 hits") {
		t.Errorf("no hits recorded:\n%s", s)
	}
}

func TestRunWithFillMisses(t *testing.T) {
	addr := startTestServer(t)
	var out bytes.Buffer
	args := []string{
		"-servers", addr,
		"-keys", "100",
		"-ops", "300",
		"-lambda", "50000",
		"-miss-ratio", "0.3",
		"-fill-misses",
		"-mud", "100000",
		"-workers", "8",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "misses") {
		t.Errorf("output missing miss accounting:\n%s", out.String())
	}
}

func TestRunSimPlane(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-plane", "sim",
		"-lambda", "250000", "-mus", "80000", "-plane-servers", "4",
		"-n", "150", "-miss-ratio", "0.01", "-ops", "1000",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"sim plane", "E[T(N)]", "breakdown",
		"queue_wait", "service", "miss_penalty", "fork_join", "p99"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunModelPlane(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-plane", "model",
		"-lambda", "250000", "-mus", "80000", "-plane-servers", "4",
		"-n", "150", "-miss-ratio", "0.01",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The model plane has no sample — only bounds plus the analytic
	// stage decomposition.
	for _, want := range []string{"model plane", "E[T(N)]", "~", "breakdown", "queue_wait"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "p99.9") {
		t.Errorf("model plane printed sample percentiles:\n%s", s)
	}
}

func TestRunLivePlane(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane needs real time")
	}
	var out bytes.Buffer
	args := []string{
		"-plane", "live",
		"-lambda", "2000", "-mus", "2000", "-plane-servers", "2",
		"-ops", "400", "-miss-ratio", "0.01",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"live plane", "issued", "hits", "breakdown", "service"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunUnknownPlane(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-plane", "quantum"}, &out); err == nil {
		t.Error("unknown plane accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	// Unreachable server: Populate must fail with an error, not hang.
	if err := run([]string{"-servers", "127.0.0.1:1", "-ops", "10", "-keys", "5"}, &out); err == nil {
		t.Error("dead server accepted")
	}
}

func TestRunWithTraceJournal(t *testing.T) {
	addr := startTestServer(t)
	dir := t.TempDir()
	path := dir + "/run.trace"
	var out bytes.Buffer
	args := []string{
		"-servers", addr,
		"-keys", "50",
		"-ops", "200",
		"-lambda", "50000",
		"-workers", "4",
		"-trace", path,
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := trace.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 200 {
		t.Errorf("journaled %d records, want 200", len(records))
	}
	for i := 1; i < len(records); i++ {
		if records[i].Offset < records[i-1].Offset {
			t.Fatal("trace offsets not monotone")
		}
	}
}
