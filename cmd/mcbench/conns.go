package main

// Connection-scaling mode (-conns / -conn-ramp): the CLI face of the
// event-loop core's C100K story. mcbench parks a fleet of mostly-idle
// connections on one server while a small hot subset issues sequential
// gets, and reports latency quantiles per connection count. With
// -conn-ramp the idle fleet grows through each tier without redialing,
// so one run produces the p99-vs-conns curve the README table shows.

import (
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// raiseNoFile lifts the soft fd limit to the hard limit (best effort)
// and returns the resulting limit — high connection tiers need it.
func raiseNoFile() uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 1024
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
		_ = syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	return uint64(rl.Cur)
}

// parseConnRamp merges -conns and -conn-ramp into an ascending tier
// list of total connection counts.
func parseConnRamp(conns int, ramp string) ([]int, error) {
	var tiers []int
	if conns > 0 {
		tiers = append(tiers, conns)
	}
	if ramp != "" {
		for _, f := range strings.Split(ramp, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("-conn-ramp: bad tier %q", f)
			}
			tiers = append(tiers, n)
		}
	}
	sort.Ints(tiers)
	return tiers, nil
}

// connsBench holds the rampable state: the hot connections that issue
// traffic and the idle fleet parked on the server.
type connsBench struct {
	addr      string
	hot       []net.Conn
	idle      []net.Conn
	valueSize int
	timeout   time.Duration
	rotate    bool // loopback target: rotate source IPs for port space
}

func (cb *connsBench) close() {
	for _, c := range cb.hot {
		_ = c.Close()
	}
	for _, c := range cb.idle {
		_ = c.Close()
	}
}

// dial opens one connection, rotating loopback source addresses so the
// ephemeral port space never runs out at high tiers.
func (cb *connsBench) dial(i int) (net.Conn, error) {
	d := net.Dialer{Timeout: cb.timeout, KeepAlive: -1}
	if cb.rotate {
		d.LocalAddr = &net.TCPAddr{IP: net.IPv4(127, 0, 0, byte(2+i%200))}
	}
	return d.Dial("tcp", cb.addr)
}

// grow parks additional idle connections until the total (hot + idle)
// reaches target. Dials run on a few goroutines; failures abort.
func (cb *connsBench) grow(target int) error {
	need := target - len(cb.hot) - len(cb.idle)
	if need <= 0 {
		return nil
	}
	conns := make([]net.Conn, need)
	base := len(cb.idle)
	var next atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= need {
					return
				}
				c, err := cb.dial(base + i)
				if err != nil {
					select {
					case errc <- fmt.Errorf("dial idle conn %d/%d: %w", base+i, target, err):
					default:
					}
					return
				}
				conns[i] = c
			}
		}()
	}
	wg.Wait()
	for _, c := range conns {
		if c != nil {
			cb.idle = append(cb.idle, c)
		}
	}
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// connsKey is the fixed per-hot-connection key.
func connsKey(i int) string { return fmt.Sprintf("mcbench:conns:%d", i) }

// prime sets each hot connection's key so the measured gets are hits.
func (cb *connsBench) prime() error {
	value := strings.Repeat("v", cb.valueSize)
	buf := make([]byte, 64)
	for i, c := range cb.hot {
		key := connsKey(i)
		req := fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", key, cb.valueSize, value)
		_ = c.SetDeadline(time.Now().Add(cb.timeout))
		if _, err := c.Write([]byte(req)); err != nil {
			return fmt.Errorf("prime %s: %w", key, err)
		}
		n, err := c.Read(buf)
		if err != nil {
			return fmt.Errorf("prime %s: %w", key, err)
		}
		if got := string(buf[:n]); got != "STORED\r\n" {
			return fmt.Errorf("prime %s: unexpected reply %q", key, got)
		}
		_ = c.SetDeadline(time.Time{})
	}
	return nil
}

// connsQuantiles summarizes per-op RTTs in seconds.
type connsQuantiles struct {
	p50, p95, p99 float64
	ops           int
	elapsed       time.Duration
}

// run issues totalOps sequential gets split across the hot connections
// and returns the RTT quantiles.
func (cb *connsBench) run(totalOps int) (connsQuantiles, error) {
	var remaining atomic.Int64
	remaining.Store(int64(totalOps))
	var wg sync.WaitGroup
	errs := make(chan error, len(cb.hot))
	samples := make([][]float64, len(cb.hot))
	start := time.Now()
	deadline := start.Add(cb.timeout)
	for i, c := range cb.hot {
		wg.Add(1)
		go func(i int, c net.Conn) {
			defer wg.Done()
			key := connsKey(i)
			req := []byte("get " + key + "\r\n")
			resp := make([]byte, len(fmt.Sprintf("VALUE %s 0 %d\r\n", key, cb.valueSize))+cb.valueSize+2+len("END\r\n"))
			_ = c.SetDeadline(deadline)
			for remaining.Add(-1) >= 0 {
				t0 := time.Now()
				if _, err := c.Write(req); err != nil {
					errs <- fmt.Errorf("hot conn %d: %w", i, err)
					return
				}
				if _, err := io.ReadFull(c, resp); err != nil {
					errs <- fmt.Errorf("hot conn %d: %w", i, err)
					return
				}
				samples[i] = append(samples[i], time.Since(t0).Seconds())
			}
			if len(samples[i]) > 0 && !strings.HasSuffix(string(resp), "END\r\n") {
				errs <- fmt.Errorf("hot conn %d: response desynced (tail %q)", i, string(resp[len(resp)-5:]))
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return connsQuantiles{}, err
	default:
	}
	var all []float64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Float64s(all)
	q := func(level float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return all[int(level*float64(len(all)-1))]
	}
	return connsQuantiles{p50: q(0.50), p95: q(0.95), p99: q(0.99), ops: len(all), elapsed: elapsed}, nil
}

// runConns is the -conns/-conn-ramp entry point: ramp the idle fleet
// through each tier, measure the hot subset, print one row per tier.
func runConns(out io.Writer, addr string, tiers []int, hot, ops, valueSize int, timeout time.Duration) error {
	if hot <= 0 {
		return fmt.Errorf("-conn-hot must be positive")
	}
	if last := tiers[len(tiers)-1]; last < hot {
		return fmt.Errorf("-conns %d below the hot subset (-conn-hot %d)", last, hot)
	}
	limit := raiseNoFile()
	if need := uint64(tiers[len(tiers)-1] + 64); limit < need {
		return fmt.Errorf("RLIMIT_NOFILE=%d cannot hold %d connections (need ~%d)", limit, tiers[len(tiers)-1], need)
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-servers %q: %w", addr, err)
	}
	ip := net.ParseIP(host)
	cb := &connsBench{
		addr:      addr,
		valueSize: valueSize,
		timeout:   timeout,
		rotate:    ip != nil && ip.IsLoopback(),
	}
	defer cb.close()
	for i := 0; i < hot; i++ {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return fmt.Errorf("dial hot conn %d: %w", i, err)
		}
		cb.hot = append(cb.hot, c)
	}
	if err := cb.prime(); err != nil {
		return err
	}
	fmt.Fprintf(out, "connection scaling against %s: %d hot connections, %d ops per tier\n", addr, hot, ops)
	us := func(s float64) float64 { return s * 1e6 }
	for _, tier := range tiers {
		if err := cb.grow(tier); err != nil {
			return err
		}
		q, err := cb.run(ops)
		if err != nil {
			return err
		}
		rate := float64(q.ops) / q.elapsed.Seconds()
		fmt.Fprintf(out, "conns=%-7d p50=%8.1fµs  p95=%8.1fµs  p99=%8.1fµs  (%d ops, %.0f ops/s)\n",
			tier, us(q.p50), us(q.p95), us(q.p99), q.ops, rate)
	}
	return nil
}
