// Command mcbench is the mutilate-like load generator CLI: it drives a
// memcached cluster with the paper's workload shape (Generalized Pareto
// inter-arrival gaps, geometric batch concurrency, Zipf popularity) and
// reports the per-key latency distribution.
//
// Example against two local servers:
//
//	mcbench -servers 127.0.0.1:11211,127.0.0.1:11212 \
//	        -lambda 2000 -xi 0.15 -q 0.1 -ops 20000
//
// With -plane the benchmark runs against an internal evaluation plane
// instead of external servers: -plane=live brings up an in-process
// shaped TCP cluster, -plane=sim (or sim-integrated, model) evaluates
// the same scenario in virtual time. Both print the per-stage latency
// breakdown recorded by the telemetry seam.
//
//	mcbench -plane=live -lambda 1000 -mus 1000 -plane-servers 2 -ops 2000
//	mcbench -plane=sim -lambda 250000 -mus 80000 -plane-servers 4 -n 150
//
// -faults injects a deterministic fault schedule into the -plane run,
// and the resilience flags (-retries, -hedge-delay/-hedge-percentile,
// -breaker-*) arm the client/simulator recovery policies:
//
//	mcbench -plane=live -faults "reset:srv=0" -breaker-threshold 0.5 ...
//
// Observability: -trace-out records request-scoped spans across every
// tier of the run (wall-clock on live paths, virtual time on the sim
// planes) and writes them as Chrome trace-event JSON on exit; -slow
// logs the span tree of any request at least that slow; -admin serves
// /metrics, /healthz, /debug/pprof and /trace while the run is live.
//
//	mcbench -plane=live -admin 127.0.0.1:8700 -trace-out trace.json -slow 5ms ...
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"memqlat/internal/backend"
	"memqlat/internal/client"
	"memqlat/internal/coalesce"
	"memqlat/internal/core"
	"memqlat/internal/fault"
	"memqlat/internal/loadgen"
	"memqlat/internal/metrics"
	"memqlat/internal/otrace"
	"memqlat/internal/plane"
	"memqlat/internal/proxy"
	"memqlat/internal/slo"
	"memqlat/internal/stats"
	"memqlat/internal/telemetry"
	"memqlat/internal/tenant"
	"memqlat/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	var (
		servers    = fs.String("servers", "127.0.0.1:11211", "comma-separated server addresses")
		keys       = fs.Int("keys", 10000, "keyspace size")
		valueSize  = fs.Int("value-size", 100, "value size in bytes (the mean under -value-dist=lognormal)")
		valueDist  = fs.String("value-dist", "fixed", "per-key value-size law: fixed|lognormal (mixed object sizes for a disk tier)")
		valueSigma = fs.Float64("value-sigma", 0, "lognormal shape for -value-dist=lognormal (0 = default 0.5)")
		zipfS      = fs.Float64("zipf", 0, "Zipf popularity exponent (0 = uniform)")
		lambda     = fs.Float64("lambda", 2000, "target aggregate key rate (keys/s)")
		xi         = fs.Float64("xi", 0.15, "burst degree of batch gaps")
		q          = fs.Float64("q", 0.1, "concurrent probability (batching)")
		missRatio  = fs.Float64("miss-ratio", 0, "fraction of gets forced to miss")
		ops        = fs.Int("ops", 10000, "operations to issue")
		workers    = fs.Int("workers", 32, "max in-flight operations")
		seed       = fs.Uint64("seed", 1, "random seed")
		fill       = fs.Bool("fill-misses", false, "relay misses to a simulated database")
		mud        = fs.Float64("mud", 1000, "simulated database service rate for -fill-misses")
		coalesced  = fs.Bool("coalesce", false, "single-flight coalesce concurrent misses per key (needs -fill-misses on external runs)")
		hotZipf    = fs.Float64("hot-zipf", 0, "Zipf exponent for the hot-key miss keyspace (plane modes; overrides -zipf on external runs when set)")
		fillTTL    = fs.Duration("fill-ttl", 0, "write-back TTL for filled misses (negative = store already expired, keeping misses steady)")
		dbQueue    = fs.Int("db-queue", 0, "bound the simulated database to a single serving queue of this depth (0 = concurrent)")
		timeout    = fs.Duration("timeout", 10*time.Minute, "overall run timeout")
		keyTrace   = fs.String("trace", "", "journal the issued key stream to this file (mrc/replay input)")
		closed     = fs.Bool("closed-loop", false, "closed-loop mode (fixed concurrency + think time) instead of open-loop pacing")

		conns    = fs.Int("conns", 0, "connection-scaling mode: park this many mostly-idle connections on the first server while -conn-hot connections issue gets (0 = off)")
		connRamp = fs.String("conn-ramp", "", `connection-scaling ramp, e.g. "1000,5000,10000": grow the idle fleet through each tier, reporting p50/p95/p99 per connection count`)
		connHot  = fs.Int("conn-hot", 16, "hot connections issuing traffic in -conns/-conn-ramp mode")

		adminAddr = fs.String("admin", "", "observability listener address for /metrics, /healthz, /debug/pprof, /trace (empty = off)")
		traceOut  = fs.String("trace-out", "", "record request-scoped spans and write them as Chrome trace-event JSON to this file")
		traceRing = fs.Int("trace-ring", 0, "span-ring capacity for -trace-out/-slow (0 = default 16384)")
		slow      = fs.Duration("slow", 0, "log the span tree of any traced request at least this slow (enables tracing)")

		proxied      = fs.Bool("proxy", false, "interpose the proxy tier (in-process mcproxy in front of -servers, or a ProxySpec on -plane runs)")
		routePolicy  = fs.String("route", "direct", "proxy routing policy for -proxy (direct|failover|replicate)")
		routeReplica = fs.Int("replicas", 2, "replication degree for -route=replicate")
		tenantsSpec  = fs.String("tenants", "", `tenant QoS specs armed at the proxy, e.g. "acme:rate=500,share=0.5;evil:rate=200,share=0.5" (needs -proxy)`)

		planeName    = fs.String("plane", "", "run against an internal plane (model|sim|sim-integrated|live) instead of -servers")
		sloSpec      = fs.String("slo", "", `arm the model-anchored SLO watchdog on a -plane run, e.g. "window=250ms,k=2,band=2" (detector keys only; the Theorem-1 bands come from the scenario flags)`)
		extstoreSpec = fs.String("extstore", "", `arm an SSD extstore tier on -plane runs, e.g. "ram=200,total=1200,mud=2000[,dist=lognormal][,sigma=0.5]" (RAM/total item budgets, disk reads/s)`)
		mus          = fs.Float64("mus", 2000, "per-server shaped service rate for -plane modes")
		planeSrv     = fs.Int("plane-servers", 2, "server count for -plane modes")
		keysPerReq   = fs.Int("n", 10, "keys per end-user request for the model/sim planes")

		faultSpec = fs.String("faults", "", `fault schedule for -plane modes, e.g. "slow:srv=0,delay=200us;drop:srv=1,p=0.1,delay=5ms"`)

		retries          = fs.Int("retries", 0, "extra read attempts after transport failures (0 = off)")
		retryBackoff     = fs.Duration("retry-backoff", 0, "base retry backoff (0 = policy default)")
		hedgeDelay       = fs.Duration("hedge-delay", 0, "fixed hedged-read trigger (0 = use -hedge-percentile)")
		hedgePercentile  = fs.Float64("hedge-percentile", 0, "hedged-read trigger quantile in (0,1) (0 = hedging off)")
		breakerThreshold = fs.Float64("breaker-threshold", 0, "circuit-breaker failure-rate trip point (0 = off)")
		breakerWindow    = fs.Int("breaker-window", 0, "circuit-breaker outcome window (0 = policy default)")
		breakerCooldown  = fs.Duration("breaker-cooldown", 0, "circuit-breaker open duration (0 = policy default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	flagSet := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })
	if *conns > 0 || *connRamp != "" {
		if *planeName != "" || *proxied {
			return fmt.Errorf("-conns/-conn-ramp drive an external server directly (no -plane or -proxy)")
		}
		tiers, err := parseConnRamp(*conns, *connRamp)
		if err != nil {
			return err
		}
		return runConns(out, strings.Split(*servers, ",")[0], tiers, *connHot, *ops, *valueSize, *timeout)
	}
	var tenantSpecs []tenant.Spec
	if *tenantsSpec != "" {
		if !*proxied {
			return fmt.Errorf("-tenants needs -proxy (QoS lives at the proxy tier)")
		}
		var err error
		tenantSpecs, err = tenant.ParseSpecs(*tenantsSpec)
		if err != nil {
			return err
		}
	}
	resilience := fault.Resilience{
		Retries:          *retries,
		RetryBackoff:     retryBackoff.Seconds(),
		HedgeDelay:       hedgeDelay.Seconds(),
		HedgePercentile:  *hedgePercentile,
		BreakerThreshold: *breakerThreshold,
		BreakerWindow:    *breakerWindow,
		BreakerCooldown:  breakerCooldown.Seconds(),
	}
	// Request-scoped tracing is armed by -trace-out or -slow; the ring
	// collects across every tier of the run.
	var tracer *otrace.Tracer
	if *traceOut != "" || *slow > 0 {
		tracer = otrace.New(otrace.Options{
			RingSize:   *traceRing,
			Slow:       slow.Seconds(),
			SlowWriter: os.Stderr,
		})
	}
	if *planeName != "" {
		faults, err := fault.ParseSchedule(*faultSpec)
		if err != nil {
			return err
		}
		ext, err := parseExtstoreSpec(*extstoreSpec)
		if err != nil {
			return err
		}
		ps := planeScenario{
			servers: *planeSrv, n: *keysPerReq, lambda: *lambda,
			xi: *xi, q: *q, mus: *mus, missRatio: *missRatio, mud: *mud,
			ops: *ops, workers: *workers, seed: *seed, timeout: *timeout,
			faults: faults, resilience: resilience, tracer: tracer,
			coalesce: *coalesced, zipfS: *hotZipf, fillTTL: *fillTTL,
			dbQueue: *dbQueue, tenants: tenantSpecs, extstore: ext,
			valueDist: *valueDist, valueSigma: *valueSigma,
		}
		if flagSet["keys"] {
			ps.keys = *keys
		}
		if *proxied {
			ps.proxy = &plane.ProxySpec{Policy: *routePolicy, Replicas: *routeReplica}
		}
		if *sloSpec != "" {
			// The watchdog is anchored on the Theorem-1 bands of the
			// exact scenario the flags describe; alert lines ride the
			// benchmark's own output stream.
			cfg, _, err := slo.ParseSpec(*sloSpec)
			if err != nil {
				return err
			}
			cfg.Predicted, err = plane.PredictedBands(ps.scenario())
			if err != nil {
				return err
			}
			cfg.AlertWriter = out
			if ps.slo, err = slo.NewWatchdog(cfg); err != nil {
				return err
			}
		}
		if *adminAddr != "" {
			// Plane runs build their tiers internally; the admin page
			// serves the shared span ring (plus health/pprof) while the
			// scenario executes.
			reg := metrics.NewRegistry()
			metrics.RegisterTracer(reg, tracer)
			metrics.RegisterSLO(reg, ps.slo)
			admin := metrics.NewAdmin(reg)
			if tracer.Enabled() {
				admin.AttachTracer(tracer)
			}
			if ps.slo != nil {
				admin.Handle("/debug/watch", ps.slo)
			}
			aaddr, err := admin.Start(*adminAddr)
			if err != nil {
				return err
			}
			defer func() { _ = admin.Close() }()
			fmt.Fprintf(out, "admin plane on http://%s/metrics\n", aaddr)
		}
		if err := runPlane(*planeName, ps, out); err != nil {
			return err
		}
		return writeChromeTrace(tracer, *traceOut, out)
	}
	if *faultSpec != "" {
		return fmt.Errorf("-faults needs a -plane mode (external -servers cannot be injected)")
	}
	if *sloSpec != "" {
		return fmt.Errorf("-slo needs a -plane mode (external servers arm their own watchdog via memcached-server/mcproxy -slo)")
	}
	if *extstoreSpec != "" {
		return fmt.Errorf("-extstore needs a -plane mode (external servers run their own tier via memcached-server -extstore-dir)")
	}
	addrs := strings.Split(*servers, ",")
	collector := telemetry.NewCollector()
	var px *proxy.Proxy
	var lim *tenant.Limiter
	if *proxied {
		// Interpose an in-process proxy: the client talks to it, it
		// multiplexes onto the configured servers.
		pol, err := proxy.ParsePolicy(*routePolicy)
		if err != nil {
			return err
		}
		if len(tenantSpecs) > 0 {
			if lim, err = tenant.New(tenantSpecs); err != nil {
				return err
			}
		}
		px, err = proxy.New(proxy.Options{
			Upstreams: addrs,
			Policy:    pol,
			Replicas:  *routeReplica,
			Recorder:  collector,
			Tracer:    tracer,
			Tenants:   lim,
			Logger:    log.New(io.Discard, "", 0),
		})
		if err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go func() { _ = px.Serve(l) }()
		defer func() { _ = px.Close() }()
		fmt.Fprintf(out, "proxying %s via %s (%s routing)\n", *servers, l.Addr(), pol)
		addrs = []string{l.Addr().String()}
	}
	clOpts := client.Options{
		Servers:    addrs,
		PoolSize:   *workers,
		FillTTL:    *fillTTL,
		Resilience: client.ResilienceFromSpec(resilience),
		Recorder:   collector,
		Tracer:     tracer,
		Seed:       *seed,
	}
	if *coalesced && !*fill {
		return fmt.Errorf("-coalesce collapses miss fills; it needs -fill-misses on external runs")
	}
	var db *backend.DB
	if *fill {
		dbOpts := backend.Options{MuD: *mud, Seed: *seed, Recorder: collector, Tracer: tracer}
		if *dbQueue > 0 {
			dbOpts.Mode = backend.ModeSingleQueue
			dbOpts.QueueDepth = *dbQueue
		}
		d, err := backend.New(dbOpts)
		if err != nil {
			return err
		}
		db = d
		defer db.Close()
		clOpts.Filler = db
		if *coalesced {
			clOpts.Coalesce = &coalesce.Policy{}
		}
	}
	cl, err := client.New(clOpts)
	if err != nil {
		return err
	}
	defer func() { _ = cl.Close() }()
	if *adminAddr != "" {
		reg := metrics.NewRegistry()
		metrics.RegisterClient(reg, cl)
		metrics.RegisterProxy(reg, px)
		metrics.RegisterTenants(reg, lim)
		metrics.RegisterTelemetry(reg, collector)
		metrics.RegisterTracer(reg, tracer)
		admin := metrics.NewAdmin(reg)
		if tracer.Enabled() {
			admin.AttachTracer(tracer)
		}
		aaddr, err := admin.Start(*adminAddr)
		if err != nil {
			return err
		}
		defer func() { _ = admin.Close() }()
		fmt.Fprintf(out, "admin plane on http://%s/metrics\n", aaddr)
	}

	popZipf := *zipfS
	if flagSet["hot-zipf"] {
		popZipf = *hotZipf
	}
	lgOpts := loadgen.Options{
		Client:        cl,
		Keys:          *keys,
		ValueSize:     *valueSize,
		ValueDist:     *valueDist,
		ValueSigma:    *valueSigma,
		ZipfS:         popZipf,
		Lambda:        *lambda,
		Xi:            *xi,
		Q:             *q,
		MissRatio:     *missRatio,
		Ops:           *ops,
		Workers:       *workers,
		Seed:          *seed,
		UseGetThrough: *fill,
		ClosedLoop:    *closed,
		Recorder:      collector,
		Tenants:       tenantSpecs,
	}
	if *keyTrace != "" {
		f, err := os.Create(*keyTrace)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		journal := trace.NewWriter(f)
		defer func() {
			if err := journal.Flush(); err != nil {
				fmt.Fprintln(out, "trace flush failed:", err)
			}
		}()
		traceFailed := false
		lgOpts.Observer = func(offset time.Duration, key string) {
			// The pacer is single-threaded; journaling inline is safe.
			// Trace-write failures must not abort the measurement run.
			if traceFailed {
				return
			}
			if err := journal.Write(trace.Record{Offset: offset, Key: key}); err != nil {
				fmt.Fprintln(out, "trace write failed:", err)
				traceFailed = true
			}
		}
	}
	fmt.Fprintf(out, "populating %d keys...\n", *keys)
	if err := loadgen.Populate(lgOpts); err != nil {
		return err
	}
	fmt.Fprintf(out, "running %d ops at %g keys/s (ξ=%g, q=%g)...\n", *ops, *lambda, *xi, *q)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := loadgen.Run(ctx, lgOpts)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "\nissued      %d ops in %v (%.0f keys/s achieved)\n",
		res.Issued, res.Elapsed.Round(time.Millisecond), res.AchievedRate())
	fmt.Fprintf(out, "outcomes    %d hits, %d misses, %d errors\n",
		res.Hits, res.Misses, res.Errors)
	if db != nil {
		// The fills line is the herd-protection ledger (and the smoke
		// script's parse target): with -coalesce, db fetches should sit
		// far below misses and the difference shows up as fan-ins.
		dbs := db.Stats()
		var cs coalesce.Stats
		if g := cl.Coalescer(); g.Coalescing() {
			cs = g.Stats()
		}
		fmt.Fprintf(out, "fills       %d misses, %d db fetches, %d fan-ins, %d sheds, queue peak %d\n",
			res.Misses, dbs.Lookups, cs.FanIns, cs.Sheds, dbs.QueuePeak)
	}
	printExternalExtstore(out, cl, len(addrs))
	printResilience(out, res.Shed, collector.Breakdown())
	if len(res.Tenants) > 0 {
		// One machine-parseable row per tenant: the QoS smoke script
		// greps shed= and p99us= off these lines.
		for i, ts := range res.Tenants {
			head := "           "
			if i == 0 {
				head = "tenants    "
			}
			fmt.Fprintf(out, "%s %s\n", head, tenantRow(ts.Name, ts.Issued, ts.Sheds, ts.Latency))
		}
	}
	fmt.Fprintf(out, "latency     mean %v\n", secs(res.Latency.Mean()))
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(out, "            p%-5g %v\n", p*100, secs(res.Latency.MustQuantile(p)))
	}
	return writeChromeTrace(tracer, *traceOut, out)
}

// tenantRow formats one tenant's outcome as a stable key=value row so
// shell smokes can awk the counters out: p99us is the tenant's
// admitted-traffic p99 in whole microseconds (0 when it has no
// samples).
func tenantRow(name string, issued, shed int64, lat *stats.Histogram) string {
	p99 := 0.0
	if lat != nil && lat.Count() > 0 {
		p99 = lat.MustQuantile(0.99)
	}
	return fmt.Sprintf("%s: issued=%d shed=%d p99us=%.0f", name, issued, shed, p99*1e6)
}

// printResilience is the one-line recovery summary: the loadgen's
// breaker-shed count plus the per-stage retry/hedge/shed observation
// counts, so a faulted run is legible without parsing the breakdown.
// Healthy runs (all zeros, no policies armed) stay silent.
func printResilience(out io.Writer, shed int64, b telemetry.Breakdown) {
	retries := b[telemetry.StageRetry].Count
	hedges := b[telemetry.StageHedgeWait].Count
	stageShed := b[telemetry.StageBreakerShed].Count
	if shed == 0 && retries == 0 && hedges == 0 && stageShed == 0 {
		return
	}
	fmt.Fprintf(out, "resilience  %d breaker-shed ops, %d retry waits, %d hedges fired\n",
		max64(shed, stageShed), retries, hedges)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// writeChromeTrace dumps the tracer's span ring as Chrome trace-event
// JSON and re-parses the written file, so a truncated or corrupt dump
// fails the run instead of failing later in chrome://tracing. A nil
// tracer or empty path is a no-op.
func writeChromeTrace(tr *otrace.Tracer, path string, out io.Writer) error {
	if !tr.Enabled() || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("trace-out: re-read: %w", err)
	}
	events, err := otrace.ParseChrome(data)
	if err != nil {
		return fmt.Errorf("trace-out: written file does not parse: %w", err)
	}
	_, total := tr.Stats()
	fmt.Fprintf(out, "trace       %d spans written to %s (%d recorded; load into chrome://tracing)\n",
		events, path, total)
	return nil
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}

// planeScenario carries the flag values the -plane modes consume.
type planeScenario struct {
	servers, n, ops, workers int
	lambda, xi, q            float64
	mus, missRatio, mud      float64
	seed                     uint64
	timeout                  time.Duration
	faults                   fault.Schedule
	resilience               fault.Resilience
	proxy                    *plane.ProxySpec
	tracer                   *otrace.Tracer
	coalesce                 bool
	zipfS                    float64
	fillTTL                  time.Duration
	keys, dbQueue            int
	tenants                  []tenant.Spec
	extstore                 *plane.ExtstoreSpec
	valueDist                string
	valueSigma               float64
	slo                      *slo.Watchdog
}

// scenario builds the plane.Scenario the flags describe. It is pure
// (no side effects), so run() can evaluate it once to anchor the SLO
// watchdog's bands and runPlane can rebuild it for the actual run.
func (ps planeScenario) scenario() plane.Scenario {
	s := plane.Scenario{
		Name:         "mcbench",
		N:            ps.n,
		LoadRatios:   core.BalancedLoad(ps.servers),
		TotalKeyRate: ps.lambda,
		Q:            ps.q,
		Xi:           ps.xi,
		MuS:          ps.mus,
		MissRatio:    ps.missRatio,
		MuD:          ps.mud,
		Requests:     ps.ops,
		Ops:          ps.ops,
		Workers:      ps.workers,
		Duration:     ps.timeout,
		Seed:         ps.seed,
		Faults:       ps.faults,
		Resilience:   ps.resilience,
		Proxy:        ps.proxy,
		Tracer:       ps.tracer,
		Coalesce:     ps.coalesce,
		ZipfS:        ps.zipfS,
		FillTTL:      ps.fillTTL,
		Keys:         ps.keys,
		DBQueueDepth: ps.dbQueue,
		Tenants:      ps.tenants,
		Extstore:     ps.extstore,
		SLO:          ps.slo,
		ValueDist:    ps.valueDist,
		ValueSigma:   ps.valueSigma,
	}
	if s.ValueDist == loadgen.ValueDistFixed {
		// The flag default; the Scenario treats "" as fixed.
		s.ValueDist = ""
	}
	return s
}

// parseExtstoreSpec reads the -extstore tier description:
// comma-separated key=value pairs with ram/total item budgets and the
// disk service rate, e.g. "ram=200,total=1200,mud=2000".
func parseExtstoreSpec(s string) (*plane.ExtstoreSpec, error) {
	if s == "" {
		return nil, nil
	}
	spec := &plane.ExtstoreSpec{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[1] == "" {
			return nil, fmt.Errorf("-extstore: %q is not key=value", part)
		}
		var err error
		switch kv[0] {
		case "ram":
			spec.RAMItems, err = strconv.Atoi(kv[1])
		case "total":
			spec.TotalItems, err = strconv.Atoi(kv[1])
		case "mud", "mudisk":
			spec.MuDisk, err = strconv.ParseFloat(kv[1], 64)
		case "dist":
			spec.DiskDist = kv[1]
		case "sigma":
			spec.DiskSigma, err = strconv.ParseFloat(kv[1], 64)
		default:
			return nil, fmt.Errorf("-extstore: unknown field %q (ram, total, mud, dist, sigma)", kv[0])
		}
		if err != nil {
			return nil, fmt.Errorf("-extstore: field %q: %w", kv[0], err)
		}
	}
	return spec, nil
}

// printExtstore is the one-line tier summary of a plane run: the
// measured disk-path counters next to the MRC-predicted hit fraction
// (model/sim runs leave the live-only counters at zero).
func printExtstore(out io.Writer, er *plane.ExtstoreResult) {
	if er == nil {
		return
	}
	fmt.Fprintf(out, "extstore    %d disk hits, %d promotions, %d segment bytes, %d compactions (β pred %.2f)\n",
		er.DiskHits, er.Promotions, er.SegmentBytes, er.Compactions, er.Predicted.DiskHitFraction())
}

// printExternalExtstore sums the extstore_* stats rows across external
// servers and prints the same one-line summary; servers without a disk
// tier (or a proxy that does not relay stats) stay silent.
func printExternalExtstore(out io.Writer, cl *client.Client, n int) {
	var hits, promotions, segBytes, compactions int64
	found := false
	for i := 0; i < n; i++ {
		m, err := cl.ServerStats(i)
		if err != nil {
			continue
		}
		if _, ok := m["extstore_disk_hits"]; !ok {
			continue
		}
		found = true
		hits += statInt(m, "extstore_disk_hits")
		promotions += statInt(m, "extstore_promotions")
		segBytes += statInt(m, "extstore_segment_bytes")
		compactions += statInt(m, "extstore_compactions")
	}
	if found {
		fmt.Fprintf(out, "extstore    %d disk hits, %d promotions, %d segment bytes, %d compactions\n",
			hits, promotions, segBytes, compactions)
	}
}

func statInt(m map[string]string, k string) int64 {
	v, err := strconv.ParseInt(m[k], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// runPlane evaluates the flag-described scenario on the named internal
// plane and prints the common Result surface: totals, the sampled
// percentiles (when the plane measures), and the per-stage Breakdown.
func runPlane(name string, ps planeScenario, out io.Writer) error {
	p, err := plane.ByName(name)
	if err != nil {
		return err
	}
	s := ps.scenario()
	if ps.proxy != nil {
		fmt.Fprintf(out, "interposing proxy tier (%s routing)\n", ps.proxy.Policy)
	}
	if !ps.faults.Empty() {
		fmt.Fprintf(out, "injecting faults: %s\n", ps.faults)
	}
	fmt.Fprintf(out, "running scenario on the %s plane (%d servers, λ=%g, µS=%g)...\n",
		p.Name(), ps.servers, ps.lambda, ps.mus)
	ctx, cancel := context.WithTimeout(context.Background(), ps.timeout)
	defer cancel()
	res, err := p.Run(ctx, s)
	if err != nil {
		return err
	}
	if res.Total.Lo == res.Total.Hi {
		fmt.Fprintf(out, "\nE[T(N)]     %v (TS %v, TD %v, TN %v)\n",
			secs(res.Point()), secs(res.TS.Mid()), secs(res.TD), secs(res.TN))
	} else {
		fmt.Fprintf(out, "\nE[T(N)]     %v ~ %v (TS %v ~ %v, TD %v, TN %v)\n",
			secs(res.Total.Lo), secs(res.Total.Hi),
			secs(res.TS.Lo), secs(res.TS.Hi), secs(res.TD), secs(res.TN))
	}
	if lg := res.Live; lg != nil {
		fmt.Fprintf(out, "issued      %d ops in %v (%.0f keys/s achieved)\n",
			lg.Issued, lg.Elapsed.Round(time.Millisecond), lg.AchievedRate())
		fmt.Fprintf(out, "outcomes    %d hits, %d misses, %d errors (%d breaker-shed)\n",
			lg.Hits, lg.Misses, lg.Errors, lg.Shed)
	}
	if sr := res.Sim; sr != nil && (sr.FailedKeys > 0 || sr.ShedKeys > 0) {
		fmt.Fprintf(out, "faults      %d/%d keys failed, %d shed, %d/%d requests degraded\n",
			sr.FailedKeys, sr.KeyCount, sr.ShedKeys, sr.DegradedRequests, sr.Requests)
	}
	if sr := res.Sim; sr != nil && s.Coalesce {
		fmt.Fprintf(out, "fills       %d misses, %d db fetches, %d delayed hits\n",
			sr.MissCount, sr.BackendFetches, sr.DelayedHits)
	}
	if res.DB != nil {
		var fanIns, sheds int64
		if res.Coalesce != nil {
			fanIns, sheds = res.Coalesce.FanIns, res.Coalesce.Sheds
		}
		fmt.Fprintf(out, "fills       %d misses, %d db fetches, %d fan-ins, %d sheds, queue peak %d\n",
			res.Live.Misses, res.DB.Lookups, fanIns, sheds, res.DB.QueuePeak)
	}
	printExtstore(out, res.Extstore)
	var shed int64
	if res.Live != nil {
		shed = res.Live.Shed
	}
	printResilience(out, shed, res.Breakdown)
	for i, tr := range res.Tenants {
		head := "           "
		if i == 0 {
			head = "tenants    "
		}
		fmt.Fprintf(out, "%s %s offered=%.0f admitted=%.0f\n",
			head, tenantRow(tr.Name, tr.Issued, tr.Shed, tr.Latency), tr.Offered, tr.Admitted)
	}
	if res.Sample != nil && res.Sample.Count() > 0 {
		printSample(out, res.Sample, res.MeanCI)
	}
	printSLO(out, res.SLO)
	printBreakdown(out, res.Breakdown)
	fmt.Fprintf(out, "plane run completed in %v\n", res.Elapsed.Round(time.Millisecond))
	return nil
}

// printSLO is the one-line watchdog verdict of a plane run: windows
// evaluated, alert counts, the attributed stage (if any drifted) and
// the burn-rate pair. Runs without -slo stay silent.
func printSLO(out io.Writer, st *slo.Status) {
	if st == nil {
		return
	}
	line := fmt.Sprintf("slo         %d windows, %d drift alerts, %d burn alerts",
		st.WindowsClosed, st.DriftAlerts, st.BurnAlerts)
	if st.TopDrift != "" {
		mag := 0.0
		for _, ss := range st.Stages {
			if ss.Stage == st.TopDrift {
				mag = ss.Magnitude
			}
		}
		line += fmt.Sprintf(", top drift %s (%.1fx band center)", st.TopDrift, mag)
	}
	if st.Target > 0 {
		line += fmt.Sprintf(", burn %.2f/%.2f", st.BurnShort, st.BurnLong)
	}
	fmt.Fprintln(out, line)
}

func printSample(out io.Writer, h *stats.Histogram, ci stats.Interval) {
	fmt.Fprintf(out, "latency     mean %v [%v, %v] 95%% CI\n",
		secs(h.Mean()), secs(ci.Lo), secs(ci.Hi))
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(out, "            p%-5g %v\n", p*100, secs(h.MustQuantile(p)))
	}
}

func printBreakdown(out io.Writer, b telemetry.Breakdown) {
	if b.Empty() {
		return
	}
	fmt.Fprintf(out, "breakdown   %-12s %10s %10s %10s %10s\n", "stage", "count", "mean", "p50", "p99")
	for _, st := range telemetry.Stages() {
		ss, ok := b[st]
		if !ok || ss.Count == 0 {
			continue
		}
		fmt.Fprintf(out, "            %-12s %10d %10v %10v %10v\n",
			st, ss.Count, secs(ss.Mean), secs(ss.P50), secs(ss.P99))
	}
}
