// Command mcbench is the mutilate-like load generator CLI: it drives a
// memcached cluster with the paper's workload shape (Generalized Pareto
// inter-arrival gaps, geometric batch concurrency, Zipf popularity) and
// reports the per-key latency distribution.
//
// Example against two local servers:
//
//	mcbench -servers 127.0.0.1:11211,127.0.0.1:11212 \
//	        -lambda 2000 -xi 0.15 -q 0.1 -ops 20000
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"memqlat/internal/backend"
	"memqlat/internal/client"
	"memqlat/internal/loadgen"
	"memqlat/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	var (
		servers   = fs.String("servers", "127.0.0.1:11211", "comma-separated server addresses")
		keys      = fs.Int("keys", 10000, "keyspace size")
		valueSize = fs.Int("value-size", 100, "value size in bytes")
		zipfS     = fs.Float64("zipf", 0, "Zipf popularity exponent (0 = uniform)")
		lambda    = fs.Float64("lambda", 2000, "target aggregate key rate (keys/s)")
		xi        = fs.Float64("xi", 0.15, "burst degree of batch gaps")
		q         = fs.Float64("q", 0.1, "concurrent probability (batching)")
		missRatio = fs.Float64("miss-ratio", 0, "fraction of gets forced to miss")
		ops       = fs.Int("ops", 10000, "operations to issue")
		workers   = fs.Int("workers", 32, "max in-flight operations")
		seed      = fs.Uint64("seed", 1, "random seed")
		fill      = fs.Bool("fill-misses", false, "relay misses to a simulated database")
		mud       = fs.Float64("mud", 1000, "simulated database service rate for -fill-misses")
		timeout   = fs.Duration("timeout", 10*time.Minute, "overall run timeout")
		traceOut  = fs.String("trace", "", "journal the issued key stream to this file (mrc/replay input)")
		closed    = fs.Bool("closed-loop", false, "closed-loop mode (fixed concurrency + think time) instead of open-loop pacing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := strings.Split(*servers, ",")
	clOpts := client.Options{Servers: addrs, PoolSize: *workers}
	if *fill {
		db, err := backend.New(backend.Options{MuD: *mud, Seed: *seed})
		if err != nil {
			return err
		}
		defer db.Close()
		clOpts.Filler = db
	}
	cl, err := client.New(clOpts)
	if err != nil {
		return err
	}
	defer func() { _ = cl.Close() }()

	lgOpts := loadgen.Options{
		Client:        cl,
		Keys:          *keys,
		ValueSize:     *valueSize,
		ZipfS:         *zipfS,
		Lambda:        *lambda,
		Xi:            *xi,
		Q:             *q,
		MissRatio:     *missRatio,
		Ops:           *ops,
		Workers:       *workers,
		Seed:          *seed,
		UseGetThrough: *fill,
		ClosedLoop:    *closed,
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		journal := trace.NewWriter(f)
		defer func() {
			if err := journal.Flush(); err != nil {
				fmt.Fprintln(out, "trace flush failed:", err)
			}
		}()
		traceFailed := false
		lgOpts.Observer = func(offset time.Duration, key string) {
			// The pacer is single-threaded; journaling inline is safe.
			// Trace-write failures must not abort the measurement run.
			if traceFailed {
				return
			}
			if err := journal.Write(trace.Record{Offset: offset, Key: key}); err != nil {
				fmt.Fprintln(out, "trace write failed:", err)
				traceFailed = true
			}
		}
	}
	fmt.Fprintf(out, "populating %d keys...\n", *keys)
	if err := loadgen.Populate(lgOpts); err != nil {
		return err
	}
	fmt.Fprintf(out, "running %d ops at %g keys/s (ξ=%g, q=%g)...\n", *ops, *lambda, *xi, *q)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := loadgen.Run(ctx, lgOpts)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "\nissued      %d ops in %v (%.0f keys/s achieved)\n",
		res.Issued, res.Elapsed.Round(time.Millisecond), res.AchievedRate())
	fmt.Fprintf(out, "outcomes    %d hits, %d misses, %d errors\n",
		res.Hits, res.Misses, res.Errors)
	fmt.Fprintf(out, "latency     mean %v\n", secs(res.Latency.Mean()))
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(out, "            p%-5g %v\n", p*100, secs(res.Latency.MustQuantile(p)))
	}
	return nil
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}
