// Command memcached-server runs the memqlat cache server: an in-memory
// LRU key-value store speaking the memcached text protocol over TCP.
//
// Example:
//
//	memcached-server -addr :11211 -memory-mb 256 -shards 16
//
// The optional -service-rate flag shapes per-command service times to
// an exponential distribution (one service channel per process), which
// turns the server into a physical realization of the paper's GI^X/M/1
// model for latency experiments.
//
// -extstore-dir arms the log-structured SSD cache tier: RAM LRU
// victims spill into append-only segment files under the directory,
// GET misses read back through the tier, and reopening the same
// directory after a crash rebuilds the disk index from the segment
// log (the startup line reports how many keys were recovered).
//
// -admin exposes the observability plane on a second listener:
// /metrics (Prometheus text exposition of the command, cache-shard and
// stage-latency families), /healthz, /debug/pprof and — with
// -trace-ring — /trace, the span ring of in-band-traced requests as
// Chrome trace-event JSON.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/extstore"
	"memqlat/internal/metrics"
	"memqlat/internal/otrace"
	"memqlat/internal/plane"
	"memqlat/internal/server"
	"memqlat/internal/slo"
	"memqlat/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memcached-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("memcached-server", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:11211", "listen address")
		memoryMB    = fs.Int64("memory-mb", 64, "cache memory budget in MiB")
		shards      = fs.Int("shards", 0, "number of cache shards (lock domains; 0 = GOMAXPROCS rounded up to a power of two)")
		maxItemKB   = fs.Int("max-item-kb", 1024, "maximum item size in KiB")
		maxConns    = fs.Int("max-conns", 1024, "maximum concurrent connections")
		serviceRate = fs.Float64("service-rate", 0, "optional exponential service-rate shaping (ops/s, 0 = off)")
		serviceCh   = fs.Int("service-channels", 1, "independent service channels for the shaped path (1 = the paper's single-server queue)")
		seed        = fs.Uint64("seed", 1, "seed for service-time shaping")
		timingSmpl  = fs.Int("timing-sample", 0, "time 1-in-N unshaped commands for stats latency/telemetry (0 = default 8, 1 = every command, negative = off)")
		extDir      = fs.String("extstore-dir", "", "arm a log-structured SSD cache tier on this directory (RAM evictions spill there; empty = off)")
		extMB       = fs.Int64("extstore-mb", 64, "extstore on-disk budget in MiB")
		extSegKB    = fs.Int64("extstore-segment-kb", 0, "extstore segment size in KiB (0 = default 4096)")
		connCore    = fs.String("conn-core", server.CoreGoroutines, "connection core: goroutines (one per connection) or eventloop (epoll loops, linux)")
		loopWorkers = fs.Int("loop-workers", 0, "event-loop goroutines for -conn-core eventloop (0 = GOMAXPROCS)")
		idleTimeout = fs.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
		adminAddr   = fs.String("admin", "", "observability listener address for /metrics, /healthz, /debug/pprof (empty = off)")
		traceRing   = fs.Int("trace-ring", 0, "retain this many spans of in-band-traced requests, served on <admin>/trace (0 = tracing off)")
		slow        = fs.Duration("slow", 0, "log the span tree of traced requests at least this slow (0 = off; needs -trace-ring)")
		sloSpec     = fs.String("slo", "", "arm the model-anchored SLO watchdog, e.g. 'lambda=2000,mus=4000,miss=0.2,mud=500,window=1s,k=2,band=2' (needs lambda; mus defaults to -service-rate; empty = off)")
		exemplars   = fs.Bool("exemplars", false, "attach OpenMetrics exemplars (trace_id of the latest traced command) to the /metrics stage histograms; needs -trace-ring")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tracer *otrace.Tracer
	if *traceRing > 0 {
		tracer = otrace.New(otrace.Options{
			RingSize:   *traceRing,
			Slow:       slow.Seconds(),
			SlowWriter: os.Stderr,
		})
	} else if *slow > 0 {
		return fmt.Errorf("-slow needs -trace-ring (no tracer to watch)")
	}
	var exStore *telemetry.ExemplarStore
	if *exemplars {
		if tracer == nil {
			return fmt.Errorf("-exemplars needs -trace-ring (exemplars come from traced commands)")
		}
		exStore = telemetry.NewExemplarStore()
	}
	// The watchdog judges this server's queue_wait/service stages
	// against the Theorem-1 bands its -slo parameters imply, on
	// wall-clock rolling windows from process start.
	var wd *slo.Watchdog
	if *sloSpec != "" {
		cfg, m, err := slo.ParseSpec(*sloSpec)
		if err != nil {
			return err
		}
		if m.MuS == 0 {
			m.MuS = *serviceRate
		}
		cfg.Predicted, err = plane.BandsFromModel(m)
		if err != nil {
			return err
		}
		cfg.AlertWriter = os.Stderr
		wd, err = slo.NewWatchdog(cfg)
		if err != nil {
			return err
		}
	}
	c, err := cache.New(cache.Options{
		MaxBytes:    *memoryMB << 20,
		Shards:      *shards,
		MaxItemSize: *maxItemKB << 10,
	})
	if err != nil {
		return err
	}
	var ext *extstore.Store
	if *extDir != "" {
		// Reopening an existing directory replays the segment log: the
		// recovered-keys line is what the smoke script greps to prove a
		// SIGKILLed tier comes back with its durable prefix intact.
		ext, err = extstore.Open(extstore.Options{
			Dir:          *extDir,
			MaxBytes:     *extMB << 20,
			SegmentBytes: *extSegKB << 10,
		})
		if err != nil {
			return err
		}
		defer func() { _ = ext.Close() }()
		log.Printf("memcached-server: extstore tier on %s (%d MiB budget, %d keys recovered in %d segments)",
			*extDir, *extMB, ext.Len(), ext.Stats().Segments)
	}
	sopts := server.Options{
		Cache:           c,
		Extstore:        ext,
		MaxConns:        *maxConns,
		ServiceRate:     *serviceRate,
		ServiceChannels: *serviceCh,
		Seed:            *seed,
		TimingSample:    *timingSmpl,
		Tracer:          tracer,
		Exemplars:       exStore,
		ConnCore:        *connCore,
		LoopWorkers:     *loopWorkers,
		IdleTimeout:     *idleTimeout,
		Logger:          log.New(os.Stderr, "memcached-server: ", log.LstdFlags),
	}
	if wd != nil {
		// The server tees Options.Recorder with its own collector, so
		// the watchdog sees every queue_wait/service observation the
		// stats page sees.
		sopts.Recorder = wd
	}
	srv, err := server.New(sopts)
	if err != nil {
		return err
	}
	if wd != nil {
		wd.Arm()
		start := time.Now()
		go func() {
			t := time.NewTicker(time.Duration(wd.Window() * float64(time.Second)))
			defer t.Stop()
			for range t.C {
				wd.Advance(time.Since(start).Seconds())
			}
		}()
		log.Printf("memcached-server: slo watchdog armed (window %gs, alerts on stderr)", wd.Window())
	}
	if *adminAddr != "" {
		reg := metrics.NewRegistry()
		metrics.RegisterServers(reg, []*server.Server{srv})
		metrics.RegisterTelemetryExemplars(reg, srv.Telemetry(), exStore)
		metrics.RegisterTracer(reg, tracer)
		metrics.RegisterSLO(reg, wd)
		admin := metrics.NewAdmin(reg)
		if tracer.Enabled() {
			admin.AttachTracer(tracer)
		}
		if wd != nil {
			admin.Handle("/debug/watch", wd)
		}
		aaddr, err := admin.Start(*adminAddr)
		if err != nil {
			return err
		}
		defer func() { _ = admin.Close() }()
		log.Printf("memcached-server: admin plane on http://%s/metrics", aaddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	log.Printf("memcached-server: listening on %s (memory %d MiB, shards %d, conn core %s)",
		*addr, *memoryMB, c.Shards(), srv.ConnCoreName())

	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("memcached-server: %v, shutting down", s)
		if err := srv.Close(); err != nil {
			return err
		}
		return <-errCh
	}
}
