package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultsMatchPaper(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The default flags are the Facebook workload: Table 3 values.
	for _, want := range []string{"836µs", "cliff utilization", "T_S(N)", "T_D(N)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFactors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-factors"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Latency factors") {
		t.Errorf("factors missing:\n%s", out.String())
	}
}

func TestRunUnbalanced(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-p1", "0.7", "-lambda", "20000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "max ρS=70.0%") {
		t.Errorf("unbalanced utilization missing:\n%s", out.String())
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-lambda", "100000"}, &out); err == nil {
		t.Error("overloaded config accepted")
	}
	if err := run([]string{"-p1", "0.1"}, &out); err == nil {
		t.Error("invalid p1 accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunElasticity(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-elasticity"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Factor leverage") {
		t.Errorf("elasticity section missing:\n%s", out.String())
	}
}
