// Command latency-model prints the Theorem 1 latency prediction for a
// Memcached deployment described on the command line, plus the factor
// cheat sheet (paper Table 2) and the utilization cliff for the given
// burst degree.
//
// Example (the paper's Facebook workload):
//
//	latency-model -n 150 -servers 4 -lambda 62500 -xi 0.15 -q 0.1 \
//	              -mus 80000 -r 0.01 -mud 1000 -net 20us
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"memqlat/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "latency-model:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("latency-model", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 150, "Memcached keys per end-user request")
		servers = fs.Int("servers", 4, "number of Memcached servers")
		lambda  = fs.Float64("lambda", 62500, "per-server key arrival rate (keys/s)")
		p1      = fs.Float64("p1", 0, "largest load ratio (0 = balanced)")
		xi      = fs.Float64("xi", 0.15, "burst degree of key arrivals")
		q       = fs.Float64("q", 0.1, "concurrent probability of keys")
		mus     = fs.Float64("mus", 80000, "per-key service rate at Memcached servers")
		r       = fs.Float64("r", 0.01, "cache miss ratio")
		mud     = fs.Float64("mud", 1000, "database service rate (keys/s)")
		netLat  = fs.Duration("net", 20*time.Microsecond, "constant network latency")
		factors = fs.Bool("factors", false, "also print the factor cheat sheet (Table 2)")
		elast   = fs.Bool("elasticity", false, "also rank factors by elasticity at this operating point")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := &core.Config{
		N:              *n,
		LoadRatios:     core.BalancedLoad(*servers),
		TotalKeyRate:   *lambda * float64(*servers),
		Q:              *q,
		Xi:             *xi,
		MuS:            *mus,
		MissRatio:      *r,
		MuD:            *mud,
		NetworkLatency: netLat.Seconds(),
	}
	if *p1 > 0 {
		ratios, err := core.UnbalancedLoad(*servers, *p1)
		if err != nil {
			return err
		}
		cfg.LoadRatios = ratios
	}
	est, err := cfg.Estimate()
	if err != nil {
		return err
	}
	usf := func(s float64) string { return fmt.Sprintf("%.0fµs", s*1e6) }
	fmt.Fprintf(out, "Theorem 1 latency estimate (M=%d, max ρS=%.1f%%)\n",
		cfg.M(), cfg.MaxUtilization()*100)
	fmt.Fprintf(out, "  δ (heaviest server)  %.4f\n", est.Delta)
	fmt.Fprintf(out, "  T_N(N)  network      %s (constant)\n", usf(est.TN))
	fmt.Fprintf(out, "  T_S(N)  cache stage  %s ~ %s\n", usf(est.TS.Lo), usf(est.TS.Hi))
	fmt.Fprintf(out, "  T_D(N)  miss stage   %s\n", usf(est.TD))
	fmt.Fprintf(out, "  T(N)    end-user     %s ~ %s\n", usf(est.Total.Lo), usf(est.Total.Hi))

	cliff, err := core.CliffUtilization(*xi, *q, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  cliff utilization ρS(ξ=%.2f) = %.0f%% — keep the busiest server below it\n",
		*xi, cliff*100)
	fmt.Fprintf(out, "  miss-latency regime: %s (N·r = %.2f)\n",
		core.ClassifyTDRegime(*n, *r), float64(*n)**r)

	if *factors {
		fmt.Fprintln(out, "\nLatency factors (paper Table 2):")
		for _, f := range core.Factors() {
			fmt.Fprintf(out, "  %-3s %s\n      %s\n", f.Symbol, f.Name, f.Law)
		}
	}
	if *elast {
		es, err := cfg.Elasticities()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\nFactor leverage at this operating point (d ln T / d ln x):")
		for i, e := range es {
			fmt.Fprintf(out, "  %d. %-3s %+0.2f  (%s)\n", i+1, e.Factor, e.Value, e.Description)
		}
	}
	return nil
}
