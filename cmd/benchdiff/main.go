// Command benchdiff compares `go test -bench` output against a
// checked-in JSON baseline (BENCH_plane.json, BENCH_server.json) and
// exits non-zero when a benchmark regressed: ns/op above the allowed
// ratio, or any allocations appearing on a path the baseline records as
// zero-alloc. It can also write a fresh baseline from current output.
//
// Typical CI usage:
//
//	go test -run '^$' -bench BenchmarkServerHotPath -benchmem ./internal/server | tee bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_server.json -current bench.txt
//
// Regenerating a baseline:
//
//	go run ./cmd/benchdiff -current bench.txt -write BENCH_server.json -comment "..."
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one entry of a baseline file.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the schema shared by the BENCH_*.json files.
type Baseline struct {
	Comment    string      `json:"comment"`
	Goos       string      `json:"goos"`
	Goarch     string      `json:"goarch"`
	CPU        string      `json:"cpu"`
	Date       string      `json:"date"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "", "baseline JSON to compare against")
		currentPath  = fs.String("current", "-", "current `go test -bench` output ('-' = stdin)")
		maxRegress   = fs.Float64("max-regress", 0.20, "allowed fractional ns/op regression before failing")
		writePath    = fs.String("write", "", "write the current results as a new baseline JSON and exit")
		comment      = fs.String("comment", "", "comment to embed when writing a baseline")
		allowMissing = fs.Bool("allow-missing", false, "do not fail when a baseline benchmark is absent from current output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = stdin
	if *currentPath != "-" {
		f, err := os.Open(*currentPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	current, meta := parseBenchOutput(string(raw))
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines found in current output")
	}

	if *writePath != "" {
		meta.Comment = *comment
		meta.Date = time.Now().UTC().Format("2006-01-02")
		meta.Benchmarks = current
		blob, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*writePath, append(blob, '\n'), 0o644)
	}

	if *baselinePath == "" {
		return fmt.Errorf("either -baseline or -write is required")
	}
	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parse %s: %w", *baselinePath, err)
	}

	failures := compare(base.Benchmarks, current, *maxRegress, *allowMissing, stdout)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stdout, "FAIL:", f)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(failures), *baselinePath)
	}
	fmt.Fprintf(stdout, "OK: %d benchmark(s) within %.0f%% of %s\n",
		len(current), *maxRegress*100, *baselinePath)
	return nil
}

// benchLine matches one `go test -bench` result line, with or without
// -benchmem columns. The trailing -N GOMAXPROCS suffix is stripped so
// baselines recorded on different core counts still match by name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBenchOutput extracts benchmark entries and run metadata (goos /
// goarch / cpu lines) from `go test -bench` text output.
func parseBenchOutput(out string) ([]Benchmark, Baseline) {
	var (
		benches []Benchmark
		meta    Baseline
	)
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			meta.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			meta.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			meta.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		benches = append(benches, b)
	}
	return benches, meta
}

// compare reports each baseline benchmark against current results and
// returns the list of violations.
func compare(base, current []Benchmark, maxRegress float64, allowMissing bool, w io.Writer) []string {
	curByName := make(map[string]Benchmark, len(current))
	for _, b := range current {
		curByName[b.Name] = b
	}
	var failures []string
	for _, b := range base {
		cur, ok := curByName[b.Name]
		if !ok {
			if !allowMissing {
				failures = append(failures,
					fmt.Sprintf("%s: present in baseline but missing from current output", b.Name))
			}
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = cur.NsPerOp/b.NsPerOp - 1
		}
		fmt.Fprintf(w, "%-60s %12.1f ns/op  baseline %12.1f  (%+.1f%%)  %d allocs/op (baseline %d)\n",
			b.Name, cur.NsPerOp, b.NsPerOp, ratio*100, cur.AllocsPerOp, b.AllocsPerOp)
		if ratio > maxRegress {
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op regressed %.1f%% (%.1f -> %.1f, allowed %.0f%%)",
				b.Name, ratio*100, b.NsPerOp, cur.NsPerOp, maxRegress*100))
		}
		// A path the baseline certifies as allocation-free must stay
		// allocation-free: any new alloc is a hard failure regardless of
		// its ns/op impact.
		if b.AllocsPerOp == 0 && cur.AllocsPerOp > 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op appeared on a zero-alloc path", b.Name, cur.AllocsPerOp))
		}
	}
	for _, c := range current {
		found := false
		for _, b := range base {
			if b.Name == c.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "%-60s %12.1f ns/op  (new: not in baseline)\n", c.Name, c.NsPerOp)
		}
	}
	return failures
}
