package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: memqlat/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServerHotPath/get/conns=1         	 2933155	       442.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkServerHotPath/get/conns=16-8      	 2934675	       420.8 ns/op	       0 B/op	       0 allocs/op
BenchmarkServerHotPath/set/conns=16        	 1422201	       843.7 ns/op	     213 B/op	       3 allocs/op
BenchmarkSimPlane-4                        	       3	  25478919 ns/op
PASS
ok  	memqlat/internal/server	10.139s
`

func TestParseBenchOutput(t *testing.T) {
	benches, meta := parseBenchOutput(sampleOutput)
	if meta.Goos != "linux" || meta.Goarch != "amd64" || !strings.Contains(meta.CPU, "Xeon") {
		t.Errorf("meta = %+v", meta)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(benches), benches)
	}
	// The -N GOMAXPROCS suffix must be stripped.
	if benches[1].Name != "BenchmarkServerHotPath/get/conns=16" {
		t.Errorf("name = %q, suffix not stripped", benches[1].Name)
	}
	if benches[1].NsPerOp != 420.8 || benches[1].AllocsPerOp != 0 {
		t.Errorf("entry = %+v", benches[1])
	}
	if benches[2].AllocsPerOp != 3 || benches[2].BytesPerOp != 213 {
		t.Errorf("benchmem columns not parsed: %+v", benches[2])
	}
	// Lines without -benchmem columns still parse.
	if benches[3].Name != "BenchmarkSimPlane" || benches[3].NsPerOp != 25478919 {
		t.Errorf("plain entry = %+v", benches[3])
	}
}

func TestCompareDetectsRegressions(t *testing.T) {
	base := []Benchmark{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "b", NsPerOp: 100, AllocsPerOp: 5},
		{Name: "c", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "gone", NsPerOp: 100},
	}
	current := []Benchmark{
		{Name: "a", NsPerOp: 119, AllocsPerOp: 0}, // within 20%
		{Name: "b", NsPerOp: 130, AllocsPerOp: 5}, // ns/op regression
		{Name: "c", NsPerOp: 90, AllocsPerOp: 1},  // new alloc on zero-alloc path
		{Name: "new", NsPerOp: 1},                 // informational only
	}
	var buf bytes.Buffer
	failures := compare(base, current, 0.20, false, &buf)
	if len(failures) != 3 {
		t.Fatalf("failures = %v, want 3", failures)
	}
	for i, want := range []string{"b: ns/op regressed", "c: 1 allocs/op appeared", "gone: present in baseline"} {
		found := false
		for _, f := range failures {
			if strings.HasPrefix(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing failure %d (%q) in %v", i, want, failures)
		}
	}
	if failures := compare(base[:3], current, 0.20, true, &buf); len(failures) != 2 {
		t.Errorf("allow-missing run = %v, want 2 failures", failures)
	}
	if !strings.Contains(buf.String(), "new: not in baseline") {
		t.Error("new benchmark not reported")
	}
}

func TestRunWriteAndCompareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cur := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(cur, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "BENCH_test.json")
	var out bytes.Buffer
	if err := run([]string{"-current", cur, "-write", basePath, "-comment", "test baseline"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(blob, &base); err != nil {
		t.Fatal(err)
	}
	if base.Comment != "test baseline" || len(base.Benchmarks) != 4 || base.Goos != "linux" {
		t.Errorf("written baseline = %+v", base)
	}
	// Comparing the same output against the freshly written baseline
	// must pass.
	out.Reset()
	if err := run([]string{"-current", cur, "-baseline", basePath}, nil, &out); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK: 4 benchmark(s)") {
		t.Errorf("output = %q", out.String())
	}
	// A doctored regression must fail.
	slow := strings.Replace(sampleOutput, "420.8 ns/op", "4208.0 ns/op", 1)
	slowPath := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(slowPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-current", slowPath, "-baseline", basePath}, nil, &out); err == nil {
		t.Error("regressed output did not fail")
	}
}
