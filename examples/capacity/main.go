// Capacity planning: close the loop the paper leaves open. The model
// takes the miss ratio r as an input (§5.2.3); here we derive it from a
// workload trace with a miss-ratio curve (Mattson stack distances),
// sweep cache capacity, and feed each capacity's r into Theorem 1 to
// see the end-user latency a deployment would actually get. Run with:
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"os"
	"strings"

	"memqlat/internal/dist"
	"memqlat/internal/mrc"
	"memqlat/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "capacity:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A synthetic Zipf trace standing in for a production key log
	//    (the Facebook trace's popularity skew is roughly Zipfian).
	const (
		keyspace = 20000
		accesses = 400000
		zipfSkew = 0.9
	)
	rng := dist.NewRand(7)
	zipf, err := dist.NewZipf(keyspace, zipfSkew)
	if err != nil {
		return err
	}
	analyzer := mrc.NewAnalyzer()
	for i := 0; i < accesses; i++ {
		analyzer.Add(fmt.Sprintf("key-%d", zipf.SampleInt(rng)))
	}
	curve, err := analyzer.Curve()
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d accesses over %d distinct keys (Zipf s=%.1f)\n",
		analyzer.Accesses(), analyzer.UniqueKeys(), zipfSkew)
	fmt.Printf("compulsory miss floor: %.2f%%\n\n", curve.ColdMissRatio()*100)

	// 2. Sweep cache capacity: MRC gives r, Theorem 1 gives latency.
	fmt.Printf("%-10s  %-10s  %-14s  %-12s\n", "capacity", "miss r", "E[TD(N)]", "E[T(N)] hi")
	for _, capacity := range []int{500, 1000, 2000, 5000, 10000, 20000} {
		r := curve.MissRatio(capacity)
		model := workload.Facebook()
		model.MissRatio = r
		est, err := model.Estimate()
		if err != nil {
			return err
		}
		bar := strings.Repeat("#", int(est.Total.Hi*1e6/150))
		fmt.Printf("%-10d  %-10s  %8.0fµs      %6.0fµs  %s\n",
			capacity, fmt.Sprintf("%.2f%%", r*100), est.TD*1e6, est.Total.Hi*1e6, bar)
	}

	// 3. Inverse question: how much cache buys a 1% miss ratio?
	capFor1pct, err := curve.CapacityForMissRatio(0.01)
	if err != nil {
		fmt.Printf("\n1%% miss ratio unreachable: %v\n", err)
	} else {
		fmt.Printf("\nto reach the paper's r=1%%: cache >= %d items (%.0f%% of keyspace)\n",
			capFor1pct, 100*float64(capFor1pct)/float64(curve.UniqueKeys()))
	}
	fmt.Println("\npaper §5.3: past N·r ≈ 1 the payoff of shrinking r is only logarithmic —")
	fmt.Println("check E[TD(N)] above: halving r late in the sweep barely moves it.")
	return nil
}
