// Cliff exploration: reproduce the paper's headline finding — the
// Memcached-server latency cliff at a burst-dependent utilization
// (Proposition 2 / Table 4) — and print capacity-planning guidance.
// Run with:
//
//	go run ./examples/cliff [-xi 0.15] [-q 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memqlat/internal/core"
	"memqlat/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cliff:", err)
		os.Exit(1)
	}
}

func run() error {
	xi := flag.Float64("xi", workload.FacebookXi, "burst degree of key arrivals")
	q := flag.Float64("q", workload.FacebookQ, "concurrent probability")
	flag.Parse()

	// 1. The latency-vs-utilization curve at this burst degree.
	fmt.Printf("E[TS(N)] vs utilization (ξ=%.2f, q=%.2f, N=%d, µS=%.0fK):\n\n",
		*xi, *q, workload.FacebookN, workload.FacebookMuS/1000)
	var curve []struct {
		rho float64
		ts  float64
	}
	maxTS := 0.0
	for rho := 0.1; rho <= 0.951; rho += 0.05 {
		m := workload.WithLambda(rho * workload.FacebookMuS)
		m.Xi = *xi
		m.Q = *q
		ts, err := m.ExpectedTSPoint()
		if err != nil {
			return err
		}
		curve = append(curve, struct{ rho, ts float64 }{rho, ts})
		if ts > maxTS {
			maxTS = ts
		}
	}
	for _, pt := range curve {
		bar := strings.Repeat("#", int(50*pt.ts/maxTS))
		fmt.Printf("  ρS=%4.0f%%  %8.0fµs  %s\n", pt.rho*100, pt.ts*1e6, bar)
	}

	// 2. Where is the cliff?
	cliff, err := core.CliffUtilization(*xi, *q, nil)
	if err != nil {
		return err
	}
	slope, err := core.CliffUtilization(*xi, *q, &core.CliffOptions{Method: core.CliffSlope})
	if err != nil {
		return err
	}
	fmt.Printf("\ncliff utilization: %.0f%% (δ-threshold), %.0f%% (slope detector)\n",
		cliff*100, slope*100)
	fmt.Printf("recommendation: keep every Memcached server below ~%.0f%% utilization;\n", cliff*100)
	fmt.Println("engage load balancing only when the busiest server crosses that line (paper §5.3).")

	// 3. Table 4: how the cliff collapses with burstiness.
	fmt.Println("\ncliff vs burst degree (paper Table 4):")
	rows, err := core.CliffTable([]float64{0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9}, *q, nil)
	if err != nil {
		return err
	}
	for _, row := range rows {
		fmt.Printf("  ξ=%.2f -> ρS %.0f%%\n", row.Xi, row.Utilization*100)
	}
	return nil
}
