// Trace record & replay: run a workload against a live cluster while
// journaling the key stream, compute its miss-ratio curve, then replay
// the exact same stream (sped up) against a second, smaller cluster and
// compare hit ratios — the workflow for answering "what would this
// production traffic do to a differently-sized cache?". Run with:
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/loadgen"
	"memqlat/internal/mrc"
	"memqlat/internal/server"
	"memqlat/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

// startCluster brings up one server with the given cache budget and
// returns a client for it plus a shutdown func.
func startCluster(maxBytes int64) (*client.Client, func(), error) {
	store, err := cache.New(cache.Options{MaxBytes: maxBytes, Shards: 1})
	if err != nil {
		return nil, nil, err
	}
	srv, err := server.New(server.Options{Cache: store, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		return nil, nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go func() { _ = srv.Serve(l) }()
	cl, err := client.New(client.Options{Servers: []string{l.Addr().String()}})
	if err != nil {
		_ = srv.Close()
		return nil, nil, err
	}
	shutdown := func() {
		_ = cl.Close()
		_ = srv.Close()
	}
	return cl, shutdown, nil
}

func run() error {
	// 1. Record: drive a Zipf workload against a roomy cluster,
	//    journaling every issued key.
	bigClient, shutdownBig, err := startCluster(64 << 20)
	if err != nil {
		return err
	}
	defer shutdownBig()

	var journal bytes.Buffer
	writer := trace.NewWriter(&journal)
	opts := loadgen.Options{
		Client:  bigClient,
		Keys:    3000,
		ZipfS:   1.0,
		Lambda:  80000,
		Xi:      0.15,
		Q:       0.1,
		Ops:     8000,
		Workers: 16,
		Seed:    21,
		Observer: func(offset time.Duration, key string) {
			_ = writer.Write(trace.Record{Offset: offset, Key: key})
		},
	}
	if err := loadgen.Populate(opts); err != nil {
		return err
	}
	res, err := loadgen.Run(context.Background(), opts)
	if err != nil {
		return err
	}
	if err := writer.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded: %d ops at %.0f keys/s, %d hits (cache big enough for everything)\n",
		res.Issued, res.AchievedRate(), res.Hits)

	// 2. Analyze: what does this trace's miss-ratio curve look like?
	records, err := trace.NewReader(bytes.NewReader(journal.Bytes())).ReadAll()
	if err != nil {
		return err
	}
	curve, err := mrc.Compute(trace.Keys(records))
	if err != nil {
		return err
	}
	fmt.Printf("trace MRC: %d accesses / %d distinct keys\n", len(records), curve.UniqueKeys())
	for _, capacity := range []int{200, 500, 1000, curve.UniqueKeys()} {
		fmt.Printf("  LRU capacity %5d -> predicted miss ratio %.1f%%\n",
			capacity, curve.MissRatio(capacity)*100)
	}

	// 3. Replay: the same stream, 20x speed, against a cluster whose
	//    cache only fits ~500 of the items.
	const itemCost = 100 + 64 + 8 // value + overhead + key bytes, approx.
	smallClient, shutdownSmall, err := startCluster(500 * itemCost)
	if err != nil {
		return err
	}
	defer shutdownSmall()
	var hits, misses int
	err = trace.Replay(context.Background(), records, 20, func(key string) error {
		_, err := smallClient.Get(key)
		switch {
		case err == nil:
			hits++
		case errors.Is(err, client.ErrCacheMiss):
			misses++
			// Miss path: fetch-and-fill, as the real system would.
			return smallClient.Set(key, []byte("refilled-value-padding-to-100-bytes-"+key), 0, 0)
		default:
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	total := hits + misses
	fmt.Printf("\nreplayed against a ~500-item cache: %.1f%% observed miss ratio\n",
		100*float64(misses)/float64(total))
	fmt.Printf("MRC prediction for 500 items:       %.1f%%\n", curve.MissRatio(500)*100)
	fmt.Println("\n(the observed ratio sits near the MRC prediction; differences come from")
	fmt.Println(" byte-based vs item-based capacity and eviction of refill metadata)")
	return nil
}
