// Load-balancing study (paper Fig. 10 / §5.2.2): sweep the largest load
// ratio p1 of a fixed 80K keys/s stream over four servers, comparing
// Theorem 1 with the simulator, and show where rebalancing starts to
// pay. Run with:
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"os"

	"memqlat/internal/core"
	"memqlat/internal/sim"
	"memqlat/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadbalance:", err)
		os.Exit(1)
	}
}

func run() error {
	const totalRate = 80000.0
	fmt.Printf("four servers, one %gK keys/s stream, heaviest server takes p1 (ξ=%.2f, µS=%.0fK)\n\n",
		totalRate/1000, workload.FacebookXi, workload.FacebookMuS/1000)
	fmt.Printf("%-6s  %-8s  %-14s  %-12s  %s\n", "p1", "max ρS", "Theorem 1", "simulated", "verdict")

	cliff, err := core.CliffUtilization(workload.FacebookXi, workload.FacebookQ, nil)
	if err != nil {
		return err
	}
	baseline := -1.0
	for _, p1 := range []float64{0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85} {
		model, err := workload.WithImbalance(p1, totalRate)
		if err != nil {
			return err
		}
		est, err := model.Estimate()
		if err != nil {
			return err
		}
		res, err := sim.SimulateRequests(sim.RequestConfig{
			Model:         model,
			Requests:      4000,
			KeysPerServer: 150000,
			Seed:          11,
		})
		if err != nil {
			return err
		}
		measured, err := res.TSQuantileEstimate(model)
		if err != nil {
			return err
		}
		if baseline < 0 {
			baseline = measured
		}
		maxRho := p1 * totalRate / model.MuS
		verdict := "balanced enough"
		switch {
		case maxRho > cliff:
			verdict = "PAST THE CLIFF — rebalance now"
		case measured > 2*baseline:
			verdict = "latency doubled — plan rebalancing"
		}
		fmt.Printf("%-6.2f  %-8.0f%%  %6.0fµs       %6.0fµs      %s\n",
			p1, maxRho*100, est.TS.Hi*1e6, measured*1e6, verdict)
	}
	fmt.Printf("\ncliff utilization for this workload: %.0f%% (paper: imbalance only hurts past it)\n",
		cliff*100)
	return nil
}
