// Quickstart: embed a memqlat memcached server, talk to it with the
// client — set/get/multiget/cas/incr — and read its stats. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"memqlat/internal/cache"
	"memqlat/internal/client"
	"memqlat/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. An in-process cache server on a random loopback port.
	store, err := cache.New(cache.Options{MaxBytes: 32 << 20})
	if err != nil {
		return err
	}
	srv, err := server.New(server.Options{Cache: store, Logger: log.Default()})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Printf("serve: %v", err)
		}
	}()
	defer func() { _ = srv.Close() }()
	fmt.Println("server listening on", l.Addr())

	// 2. A client pointed at it.
	cl, err := client.New(client.Options{Servers: []string{l.Addr().String()}})
	if err != nil {
		return err
	}
	defer func() { _ = cl.Close() }()

	// 3. The basics.
	if err := cl.Set("greeting", []byte("hello, memqlat"), 0, time.Hour); err != nil {
		return err
	}
	item, err := cl.Get("greeting")
	if err != nil {
		return err
	}
	fmt.Printf("get greeting     -> %q\n", item.Value)

	// Counters.
	if err := cl.Set("visits", []byte("0"), 0, 0); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		n, err := cl.Incr("visits", 1)
		if err != nil {
			return err
		}
		fmt.Printf("incr visits      -> %d\n", n)
	}

	// Optimistic concurrency with CAS.
	tagged, err := cl.Gets("greeting")
	if err != nil {
		return err
	}
	if err := cl.CompareAndSwap("greeting", []byte("hello again"), 0, 0, tagged.CAS); err != nil {
		return err
	}
	fmt.Println("cas greeting     -> swapped with fresh token")
	if err := cl.CompareAndSwap("greeting", []byte("nope"), 0, 0, tagged.CAS); err != nil {
		fmt.Println("cas stale token  ->", err)
	}

	// Fork-join multiget (the access pattern the paper models).
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("page:%d", i)
		if err := cl.Set(key, []byte(fmt.Sprintf("content-%d", i)), 0, 0); err != nil {
			return err
		}
	}
	items, err := cl.MultiGet([]string{"page:0", "page:1", "page:2", "page:3", "page:4", "page:404"})
	if err != nil {
		return err
	}
	fmt.Printf("multiget         -> %d/6 keys found\n", len(items))

	// Get-and-touch: read a key while refreshing its TTL in one round
	// trip (sessions, leases).
	touched, err := cl.GetAndTouch("greeting", 2*time.Hour)
	if err != nil {
		return err
	}
	fmt.Printf("gat greeting     -> %q with TTL refreshed\n", touched.Value)

	// Server stats.
	stats, err := cl.ServerStats(0)
	if err != nil {
		return err
	}
	fmt.Printf("stats            -> %s gets, %s hits, %s items\n",
		stats["cmd_get"], stats["get_hits"], stats["curr_items"])
	return nil
}
