// SLO planning: the model's extensions answering deployment questions
// the paper stops short of — what are my percentile latencies, how much
// traffic can I admit under a latency budget, does the constant-network
// assumption hold for my link, and would hedged reads help? Run with:
//
//	go run ./examples/slo
package main

import (
	"fmt"
	"os"

	"memqlat/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slo:", err)
		os.Exit(1)
	}
}

func run() error {
	model := workload.Facebook()
	us := func(s float64) string { return fmt.Sprintf("%.0fµs", s*1e6) }
	ms := func(s float64) string { return fmt.Sprintf("%.2fms", s*1e3) }

	// 1. Percentile report (SLOs are written in percentiles, not means).
	fmt.Println("percentile latencies (Facebook workload):")
	fmt.Printf("  %-8s  %-24s  %s\n", "level", "T_S(N) cache stage", "T_D(N) miss stage")
	tails, err := model.Tails([]float64{0.5, 0.9, 0.99, 0.999})
	if err != nil {
		return err
	}
	for _, tr := range tails {
		fmt.Printf("  p%-7g  %-24s  %s\n", tr.Level*100,
			fmt.Sprintf("[%s, %s]", us(tr.TS.Lo), us(tr.TS.Hi)), ms(tr.TD))
	}

	// 2. Admission control: maximum aggregate rate under a TS budget.
	fmt.Println("\nadmission limits (aggregate keys/s keeping E[T_S(N)] under budget):")
	for _, budget := range []float64{200e-6, 350e-6, 500e-6, 1e-3} {
		rate, err := model.MaxTotalKeyRate(budget)
		if err != nil {
			fmt.Printf("  budget %-7s -> %v\n", us(budget), err)
			continue
		}
		perServer := rate / float64(model.M())
		fmt.Printf("  budget %-7s -> %.0fK keys/s total (%.0fK per server, ρS=%.0f%%)\n",
			us(budget), rate/1000, perServer/1000, 100*perServer/model.MuS)
	}

	// 3. Network-negligibility check (paper §4.2's assumption).
	fmt.Println("\nnetwork check (paper §4.2: constant network latency assumes no queueing):")
	for _, link := range []struct {
		name string
		bits float64
	}{{"1 Gbps", 1e9}, {"10 Gbps", 10e9}} {
		check, err := model.CheckNetwork(link.bits, 200, 1000)
		if err != nil {
			return err
		}
		verdict := "assumption HOLDS"
		if !check.Negligible {
			verdict = "assumption BREAKS — model the network as a queue"
		}
		fmt.Printf("  %-8s: keys %.1f%%, values %.1f%% -> %s\n",
			link.name, check.RequestUtilization*100, check.ResponseUtilization*100, verdict)
	}

	// 4. Would 2-way hedged reads help at this load?
	fmt.Println("\nhedged reads (2 replicas, duplicated load):")
	crossover, err := model.RedundancyCrossover(2)
	if err != nil {
		return err
	}
	fmt.Printf("  crossover at base ρS ≈ %.0f%%; this deployment runs at %.0f%% -> ",
		crossover*100, model.MaxUtilization()*100)
	if model.MaxUtilization() < crossover {
		fmt.Println("hedge")
	} else {
		fmt.Println("do NOT hedge (the duplicated load would cross the cliff)")
	}
	return nil
}
