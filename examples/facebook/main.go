// Facebook-workload walkthrough: evaluate Theorem 1 on the paper's §5.1
// configuration, run the discrete-event simulation of the same system,
// and print the Table 3-style comparison. Run with:
//
//	go run ./examples/facebook
package main

import (
	"fmt"
	"os"

	"memqlat/internal/sim"
	"memqlat/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "facebook:", err)
		os.Exit(1)
	}
}

func run() error {
	model := workload.Facebook()
	fmt.Println("Facebook workload (paper §5.1):")
	fmt.Printf("  %d servers, λ=%.1fK keys/s each, ξ=%.2f, q=%.1f, µS=%.0fK\n",
		model.M(), workload.FacebookLambda/1000, model.Xi, model.Q, model.MuS/1000)
	fmt.Printf("  N=%d keys/request, r=%.0f%% misses, µD=%.0f/s, net=%.0fµs\n",
		model.N, model.MissRatio*100, model.MuD, model.NetworkLatency*1e6)

	// Theory.
	est, err := model.Estimate()
	if err != nil {
		return err
	}
	us := func(s float64) string { return fmt.Sprintf("%.0fµs", s*1e6) }
	fmt.Println("\nTheorem 1:")
	fmt.Printf("  δ=%.4f, per-key tail decay rate %.0f/s\n", est.Delta, est.DecayRate)
	fmt.Printf("  T_S(N) ∈ [%s, %s]   T_D(N) ≈ %s   T(N) ∈ [%s, %s]\n",
		us(est.TS.Lo), us(est.TS.Hi), us(est.TD), us(est.Total.Lo), us(est.Total.Hi))

	// Experiment (virtual-time discrete-event simulation).
	fmt.Println("\nsimulating 20000 end-user requests (3M keys)...")
	res, err := sim.SimulateRequests(sim.RequestConfig{
		Model:         model,
		Requests:      20000,
		KeysPerServer: 300000,
		Seed:          7,
	})
	if err != nil {
		return err
	}
	tsEst, err := res.TSQuantileEstimate(model)
	if err != nil {
		return err
	}
	tdEst, err := res.TDQuantileEstimate()
	if err != nil {
		return err
	}
	fmt.Println("measured (paper §4.5 estimators):")
	fmt.Printf("  T_S(N) = %s   T_D(N) = %s   T(N) = %s\n",
		us(tsEst), us(tdEst), us(res.TN+tsEst+tdEst))
	fmt.Println("measured (mean of per-request maxima):")
	fmt.Printf("  T_S(N) = %s   T_D(N) = %s   T(N) = %s\n",
		us(res.TS.Mean()), us(res.TD.Mean()), us(res.Total.Mean()))
	fmt.Printf("  per-request tail: p99 = %s, p99.9 = %s\n",
		us(res.Total.MustQuantile(0.99)), us(res.Total.MustQuantile(0.999)))
	fmt.Printf("  misses: %d of %d keys (%.2f%%)\n",
		res.MissCount, res.KeyCount, 100*float64(res.MissCount)/float64(res.KeyCount))

	fmt.Println("\npaper Table 3 reference: TS 351~366µs (exp 368µs), TD 836µs (exp 867µs), T 836~1222µs (exp 1144µs)")
	return nil
}
